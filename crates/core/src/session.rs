//! High-level session facade: cluster + planner behind one handle.
//!
//! A [`Session`] is the intended entry point for programmatic use of the
//! engine: it owns a simulated [`Cluster`], loads data, and runs
//! [`LogicalPlan`]s through the distributed [`Planner`] — callers never
//! touch `NodeCtx`, multiplexer commands, or exchange operators.
//!
//! ```
//! use hsqp_engine::session::Session;
//! use hsqp_engine::logical::LogicalPlan;
//! use hsqp_engine::cluster::Transport;
//! use hsqp_engine::expr::{col, lit};
//! use hsqp_engine::plan::{AggFunc, AggSpec};
//! use hsqp_tpch::TpchTable;
//!
//! let session = Session::builder()
//!     .nodes(2)
//!     .transport(Transport::rdma())
//!     .tpch(0.001)
//!     .build()
//!     .unwrap();
//! let plan = LogicalPlan::scan(TpchTable::Lineitem)
//!     .filter(col("l_quantity").lt(lit(10)))
//!     .aggregate(&[], vec![AggSpec::new(AggFunc::Count, lit(1), "cnt")]);
//! let result = session.run(&plan).unwrap();
//! assert_eq!(result.row_count(), 1);
//! session.shutdown();
//! ```

use std::sync::Arc;

use hsqp_tpch::TpchDb;

use crate::cluster::{
    Cluster, ClusterConfig, EngineKind, ExprEngine, QueryHandle, QueryResult, Transport,
};
use crate::error::EngineError;
use crate::logical::{LogicalPlan, LogicalQuery};
use crate::plan::Plan;
use crate::planner::Planner;
use crate::queries::Query;
use crate::serve::{SubmitOptions, TenantConfig, TenantMetrics};
use crate::stats::{FeedbackCache, StatsMode};

/// Fluent configuration for a [`Session`].
///
/// Starts from [`ClusterConfig::quick`] defaults (2 workers per node, small
/// messages, NUMA cost off) — suitable for programmatic workloads; use
/// [`config`](Self::config) to supply a full [`ClusterConfig`] (e.g. the
/// paper's) instead.
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    cfg: ClusterConfig,
    sf: Option<f64>,
    stats: StatsMode,
}

impl SessionBuilder {
    fn new() -> Self {
        Self {
            cfg: ClusterConfig::quick(4),
            sf: None,
            stats: StatsMode::Static,
        }
    }

    /// Number of simulated servers (default 4).
    pub fn nodes(mut self, nodes: u16) -> Self {
        self.cfg.nodes = nodes;
        self
    }

    /// Worker threads per server (default 2).
    pub fn workers(mut self, workers: u16) -> Self {
        self.cfg.workers_per_node = workers;
        self
    }

    /// Network stack (default RDMA with round-robin scheduling).
    pub fn transport(mut self, transport: Transport) -> Self {
        self.cfg.transport = transport;
        self
    }

    /// Exchange-operator model (default hybrid parallelism).
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.cfg.engine = engine;
        self
    }

    /// Tuple bytes per network message (default 32 KiB).
    pub fn message_capacity(mut self, bytes: usize) -> Self {
        self.cfg.message_capacity = bytes;
        self
    }

    /// Queries the session runs concurrently (default 4); further
    /// [`submit`](Session::submit)ted queries queue for a slot.
    pub fn max_concurrent(mut self, queries: u16) -> Self {
        self.cfg.max_concurrent = queries;
        self
    }

    /// Collect per-query execution profiles (default on). Turn off to
    /// remove even the profiler's atomic-counter overhead from benchmark
    /// baselines.
    pub fn profiling(mut self, on: bool) -> Self {
        self.cfg.profiling = on;
        self
    }

    /// Expression engine: the compiled vector VM (default) or the
    /// tree-walking AST interpreter retained as the differential oracle.
    pub fn expr_engine(mut self, engine: ExprEngine) -> Self {
        self.cfg.expr_engine = engine;
        self
    }

    /// Declare a tenant up front: its weighted-fair share and admission
    /// caps (tenants not declared here self-register with defaults on
    /// first submit — weight 1, no caps). Call once per tenant.
    pub fn tenant(mut self, name: &str, cfg: TenantConfig) -> Self {
        self.cfg.tenants.push((name.to_string(), cfg));
        self
    }

    /// Replace the whole cluster configuration (keeps any `tpch` request).
    pub fn config(mut self, cfg: ClusterConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Generate and load TPC-H at scale factor `sf` during
    /// [`build`](Self::build).
    pub fn tpch(mut self, sf: f64) -> Self {
        self.sf = Some(sf);
        self
    }

    /// How the planner sources cardinality estimates (default
    /// [`StatsMode::Static`]): `Off` reverts to the legacy flat
    /// heuristics, `Static` prices alternatives against the sampled
    /// statistics catalog, and `Feedback` additionally re-plans later
    /// stages of multi-stage queries against observed cardinalities and
    /// remembers them across submissions in the session's
    /// [`FeedbackCache`].
    pub fn stats_mode(mut self, mode: StatsMode) -> Self {
        self.stats = mode;
        self
    }

    /// Start the cluster (and load TPC-H if requested).
    pub fn build(self) -> Result<Session, EngineError> {
        if let Some(sf) = self.sf {
            if !sf.is_finite() || sf <= 0.0 {
                return Err(EngineError::Config(
                    "TPC-H scale factor must be positive".into(),
                ));
            }
        }
        let cluster = Cluster::start(self.cfg)?;
        if let Some(sf) = self.sf {
            cluster.load_tpch(sf)?;
        }
        Ok(Session {
            cluster,
            stats: self.stats,
            feedback: Arc::new(FeedbackCache::new()),
        })
    }
}

/// A running engine session: build [`LogicalPlan`]s, call
/// [`run`](Session::run), get tables back.
pub struct Session {
    cluster: Cluster,
    stats: StatsMode,
    feedback: Arc<FeedbackCache>,
}

impl Session {
    /// Start configuring a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }

    /// Generate TPC-H at `sf` and distribute it across the cluster.
    pub fn load_tpch(&self, sf: f64) -> Result<(), EngineError> {
        if !sf.is_finite() || sf <= 0.0 {
            return Err(EngineError::Config(
                "TPC-H scale factor must be positive".into(),
            ));
        }
        self.cluster.load_tpch(sf)
    }

    /// Distribute an already-generated TPC-H database.
    pub fn load_tpch_db(&self, db: TpchDb) -> Result<(), EngineError> {
        self.cluster.load_tpch_db(db)
    }

    /// A planner whose cardinality estimates reflect the currently loaded
    /// relations, running in the session's [`StatsMode`] with the
    /// session's [`FeedbackCache`] attached.
    pub fn planner(&self) -> Planner {
        let mut p = Planner::for_cluster(&self.cluster);
        let cfg = p.config_mut();
        cfg.mode = self.stats;
        if self.stats == StatsMode::Off {
            cfg.catalog = None;
            cfg.partitioned = false;
        }
        cfg.feedback = Some(Arc::clone(&self.feedback));
        p
    }

    /// The session's stats mode.
    pub fn stats_mode(&self) -> StatsMode {
        self.stats
    }

    /// The session's observed-cardinality cache: keyed by plan
    /// fingerprint, consulted by the planner in [`StatsMode::Feedback`],
    /// fed by every adaptive execution.
    pub fn feedback_cache(&self) -> &Arc<FeedbackCache> {
        &self.feedback
    }

    /// Lower `logical` to the distributed physical plan [`run`](Self::run)
    /// would execute (for inspection and testing).
    pub fn physical_plan(&self, logical: &LogicalPlan) -> Result<Plan, EngineError> {
        self.planner().plan(logical)
    }

    /// Lower a (possibly multi-stage) query to the physical [`Query`]
    /// [`run`](Self::run) would execute — CTE materialization stages,
    /// parameter stages, and the result stage, each a distributed plan.
    pub fn physical_query(&self, query: impl Into<LogicalQuery>) -> Result<Query, EngineError> {
        self.planner().plan_query(&query.into())
    }

    /// Submit a query for concurrent execution, returning a
    /// [`QueryHandle`] immediately.
    ///
    /// Accepts anything convertible into a [`LogicalQuery`]: a single
    /// [`LogicalPlan`] (by value or reference) runs as a one-stage query,
    /// while a [`LogicalQuery`] built with
    /// [`stage`](LogicalQuery::stage) / [`with`](LogicalQuery::with) /
    /// [`then`](LogicalQuery::then) runs its CTE materializations and
    /// scalar parameter stages before the result stage.
    ///
    /// Up to [`max_concurrent`](SessionBuilder::max_concurrent) submitted
    /// queries execute at once over the shared exchange fabric — every
    /// wire message and temp relation is tagged with the query's id, so
    /// overlapping queries stay fully isolated. The handle exposes
    /// [`wait`](QueryHandle::wait), [`try_result`](QueryHandle::try_result),
    /// [`cancel`](QueryHandle::cancel), and live per-query fabric
    /// statistics ([`net_stats`](QueryHandle::net_stats)).
    pub fn submit(&self, query: impl Into<LogicalQuery>) -> Result<QueryHandle, EngineError> {
        self.submit_with(query, &SubmitOptions::default())
    }

    /// [`submit`](Self::submit) on behalf of a tenant: the query joins
    /// that tenant's queue, is admitted against its caps, and is scheduled
    /// by weighted deficit round-robin against the other tenants' queues.
    pub fn submit_as(
        &self,
        tenant: &str,
        query: impl Into<LogicalQuery>,
    ) -> Result<QueryHandle, EngineError> {
        self.submit_with(query, &SubmitOptions::tenant(tenant))
    }

    /// [`submit`](Self::submit) with full serving-layer options: tenant
    /// attribution plus an optional deadline after which the query is
    /// cancelled cooperatively (morsel-bounded) and its handle resolves to
    /// [`EngineError::DeadlineExceeded`].
    pub fn submit_with(
        &self,
        query: impl Into<LogicalQuery>,
        opts: &SubmitOptions,
    ) -> Result<QueryHandle, EngineError> {
        let query = query.into();
        if self.stats == StatsMode::Feedback {
            // Stage-at-a-time planning: each stage is lowered only after
            // the previous one ran, so its estimates see the observed
            // cardinalities of this query's earlier stages and of prior
            // submissions (via the session FeedbackCache).
            let qp = self.planner().begin_query(&query)?;
            return self.cluster.submit_adaptive(qp, 0, opts);
        }
        let physical = self.planner().plan_query(&query)?;
        self.cluster.submit_with(&physical, opts)
    }

    /// Submit a hand-written physical [`Query`] for concurrent execution
    /// (the differential-testing oracle and the escape hatch for plans the
    /// planner cannot express).
    pub fn submit_physical(&self, query: &Query) -> Result<QueryHandle, EngineError> {
        self.cluster.submit(query)
    }

    /// Plan and execute a query, returning the coordinator's result —
    /// blocking sugar for [`submit`](Self::submit) followed by
    /// [`QueryHandle::wait`].
    pub fn run(&self, query: impl Into<LogicalQuery>) -> Result<QueryResult, EngineError> {
        self.submit(query)?.wait()
    }

    /// Execute a hand-written physical [`Query`] to completion (blocking
    /// sugar for [`submit_physical`](Self::submit_physical)).
    pub fn run_query(&self, query: &Query) -> Result<QueryResult, EngineError> {
        self.submit_physical(query)?.wait()
    }

    /// The underlying cluster (fabric statistics, explicit table loading).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Snapshot the cluster-wide metrics registry: dispatcher queue depth,
    /// admission wait, active/completed query counts, network-scheduler
    /// rounds, and per-link byte counters.
    pub fn metrics(&self) -> crate::metrics::MetricsSnapshot {
        self.cluster.metrics()
    }

    /// Per-tenant serving rollups (submitted / completed / failed /
    /// cancelled / rejected counts plus attributed network traffic),
    /// sorted by tenant name.
    pub fn tenant_metrics(&self) -> Vec<TenantMetrics> {
        self.cluster.tenant_metrics()
    }

    /// Adjust a tenant's weight or admission caps at run time (applies to
    /// scheduling decisions from now on; already-queued queries keep their
    /// slots).
    pub fn configure_tenant(&self, tenant: &str, cfg: TenantConfig) -> Result<(), EngineError> {
        self.cluster.configure_tenant(tenant, cfg)
    }

    /// Tear the session down: consumes the session, whose drop stops the
    /// simulated cluster's multiplexer threads and joins each one — so a
    /// forgotten `shutdown()` cannot leak them either. Provided as the
    /// explicit, graceful path.
    pub fn shutdown(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::plan::{AggFunc, AggSpec, SortKey};
    use hsqp_tpch::TpchTable;

    #[test]
    fn builder_configures_cluster() {
        let s = Session::builder().nodes(3).workers(1).build().unwrap();
        assert_eq!(s.cluster().config().nodes, 3);
        assert_eq!(s.cluster().config().workers_per_node, 1);
        s.shutdown();
    }

    #[test]
    fn invalid_scale_factor_rejected() {
        assert!(Session::builder().nodes(1).tpch(-1.0).build().is_err());
        assert!(Session::builder().nodes(0).build().is_err());
        // The post-build load path validates too (no panic deep in dbgen).
        let s = Session::builder().nodes(1).build().unwrap();
        assert!(matches!(s.load_tpch(0.0), Err(EngineError::Config(_))));
        assert!(matches!(s.load_tpch(f64::NAN), Err(EngineError::Config(_))));
        s.shutdown();
    }

    #[test]
    fn runs_logical_plans_end_to_end() {
        let s = Session::builder().nodes(2).tpch(0.001).build().unwrap();
        let plan = LogicalPlan::scan(TpchTable::Lineitem)
            .aggregate(
                &["l_returnflag"],
                vec![AggSpec::new(AggFunc::Count, lit(1), "cnt")],
            )
            .sort(vec![SortKey::asc("l_returnflag")]);
        let result = s.run(&plan).unwrap();
        assert!(result.row_count() >= 2, "A/N/R return flags expected");
        // The planner saw real loaded cardinalities.
        let planner = s.planner();
        assert!(planner.config().stats.rows(TpchTable::Lineitem) > 100.0);
        s.shutdown();
    }

    #[test]
    fn tenant_submission_rolls_up_metrics() {
        let s = Session::builder()
            .nodes(1)
            .tpch(0.001)
            .tenant("gold", TenantConfig::weighted(4))
            .build()
            .unwrap();
        let plan = LogicalPlan::scan(TpchTable::Nation)
            .aggregate(&[], vec![AggSpec::new(AggFunc::Count, lit(1), "cnt")]);
        let r = s.submit_as("gold", &plan).unwrap().wait().unwrap();
        assert_eq!(r.row_count(), 1);
        let rollups = s.tenant_metrics();
        let gold = rollups
            .iter()
            .find(|m| m.tenant == "gold")
            .expect("gold tenant rollup");
        assert_eq!(gold.submitted, 1);
        assert_eq!(gold.completed, 1);
        assert_eq!(gold.failed + gold.cancelled + gold.rejected, 0);
        s.shutdown();
    }

    #[test]
    fn planner_errors_surface_cleanly() {
        let s = Session::builder().nodes(1).tpch(0.001).build().unwrap();
        let bad = LogicalPlan::scan(TpchTable::Nation).filter(col("missing").eq(lit(1)));
        match s.run(&bad) {
            Err(EngineError::Planner(msg)) => assert!(msg.contains("missing")),
            other => panic!("expected planner error, got {other:?}"),
        }
        s.shutdown();
    }
}
