//! Relational operators: hash join, hash aggregation, sort.
//!
//! Operators are morsel-parallel: probe/aggregation input is split into
//! morsels claimed dynamically by workers ([`crate::local::MorselDriver`]),
//! worker-local results are merged at the pipeline breaker — the HyPer
//! execution model the paper builds on.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use hsqp_storage::{decimal_to_f64, Bitmap, Column, DataType, Field, Schema, Table, Value};

use crate::expr::{eval, EvalVec, VecData};
use crate::local::MorselDriver;
use crate::plan::{AggFunc, AggPhase, AggSpec, JoinKind, SortKey};
use crate::serve::CancelToken;
use crate::vm::{BoundProgram, ExprProgram};

/// Rows a sequential operator loop processes between cancellation checks.
/// Smaller than the morsel-loop interval because hash-table builds cost
/// more per row than streaming loops.
const CANCEL_CHECK_ROWS: usize = 1024;

/// Morsel-loop cancellation point: panic out of the operator (to the
/// per-query containment net) once the query's token has tripped.
#[inline]
fn check_cancel(cancel: Option<&CancelToken>) {
    if let Some(token) = cancel {
        token.check_morsel();
    }
}

/// A fast, non-cryptographic hasher for join/aggregation keys (FxHash's
/// multiply-xor scheme; HashDoS is not a concern inside a query engine).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash = (self.hash.rotate_left(5) ^ u64::from(b)).wrapping_mul(SEED);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.hash = (self.hash.rotate_left(5) ^ v).wrapping_mul(SEED);
    }

    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }
}

/// `HashMap` with the engine hasher.
pub type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the engine hasher.
pub type FxSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

/// One component of a composite join/group key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KeyPart {
    /// Integer-backed key (ints, dates, decimals in cents).
    I64(i64),
    /// Canonical f64 bit pattern (see [`canon_f64_bits`]): the numeric
    /// join-key domain, so Int64, Float64, and promoted Decimal keys
    /// holding the same logical value compare equal.
    F64(u64),
    /// String key.
    Str(Box<str>),
    /// NULL key component (groups NULLs together, SQL GROUP BY semantics).
    Null,
}

/// A composite key.
pub type Key = Vec<KeyPart>;

/// Extract the key of row `row` from `columns`.
pub fn key_of(columns: &[&Column], row: usize) -> Key {
    columns
        .iter()
        .map(|c| {
            if !c.is_valid(row) {
                KeyPart::Null
            } else {
                match c {
                    Column::I64(v, _) => KeyPart::I64(v[row]),
                    Column::F64(v, _) => KeyPart::I64(v[row].to_bits() as i64),
                    Column::Str(v, _) => KeyPart::Str(v.get(row).into()),
                }
            }
        })
        .collect()
}

// Canonical numeric-key helpers live next to the placement hash in
// `hsqp_storage` so that table placement and exchange partitioning cannot
// diverge; re-exported here because they define the `KeyPart::F64` domain.
pub use hsqp_storage::placement::{canon_f64_bits, i64_as_f64_exact};

/// A join-key column plus its canonicalization flag: `true` promotes a
/// fixed-point Decimal (i64 cents) to its logical f64 value — the same
/// promotion expression evaluation applies — so a Decimal key equi-joins
/// against Float64 keys (aggregate outputs, computed expressions) *by
/// value* instead of silently matching nothing on raw bit patterns.
pub type JoinKeyCol<'a> = (&'a Column, bool);

/// Resolve the join-key columns of `table`, flagging Decimal columns for
/// canonical promotion.
pub fn join_key_cols<'t>(table: &'t Table, key_cols: &[usize]) -> Vec<JoinKeyCol<'t>> {
    key_cols
        .iter()
        .map(|&i| {
            (
                table.column(i),
                table.schema().fields()[i].dtype == DataType::Decimal,
            )
        })
        .collect()
}

/// Extract the canonicalized join key of row `row`.
pub fn join_key_of(columns: &[JoinKeyCol<'_>], row: usize) -> Key {
    columns
        .iter()
        .map(|&(c, promote)| {
            if !c.is_valid(row) {
                KeyPart::Null
            } else {
                match c {
                    Column::I64(v, _) if promote => {
                        KeyPart::F64(canon_f64_bits(decimal_to_f64(v[row])))
                    }
                    // Int64 keys join the numeric f64 domain when exactly
                    // representable; the rest keep their integer identity
                    // (no f64 can equal them by value anyway).
                    Column::I64(v, _) => match i64_as_f64_exact(v[row]) {
                        Some(f) => KeyPart::F64(canon_f64_bits(f)),
                        None => KeyPart::I64(v[row]),
                    },
                    Column::F64(v, _) => KeyPart::F64(canon_f64_bits(v[row])),
                    Column::Str(v, _) => KeyPart::Str(v.get(row).into()),
                }
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Hash join
// ---------------------------------------------------------------------------

/// A materialized join hash table over the build side.
///
/// Keys are canonicalized by logical type (see [`join_key_of`]), so mixed
/// Decimal/Float64 key pairs join by value. The build side is held behind
/// an `Arc` so a shared temp relation (a materialized CTE) can back the
/// hash table without being deep-copied.
pub struct JoinTable {
    build: Arc<Table>,
    index: FxMap<Key, Vec<u32>>,
}

impl JoinTable {
    /// Build the hash table from `build` keyed by `key_cols`.
    pub fn build(build: impl Into<Arc<Table>>, key_cols: &[usize]) -> Self {
        Self::build_cancellable(build, key_cols, None)
    }

    /// [`build`](Self::build) with a cooperative cancellation point every
    /// `CANCEL_CHECK_ROWS` build rows, so cancelling a query mid-build
    /// does not wait out the whole hash-table construction.
    pub fn build_cancellable(
        build: impl Into<Arc<Table>>,
        key_cols: &[usize],
        cancel: Option<&CancelToken>,
    ) -> Self {
        let build = build.into();
        let mut index: FxMap<Key, Vec<u32>> = FxMap::default();
        {
            let cols = join_key_cols(&build, key_cols);
            for row in 0..build.rows() {
                if row % CANCEL_CHECK_ROWS == 0 {
                    check_cancel(cancel);
                }
                let key = join_key_of(&cols, row);
                if key.contains(&KeyPart::Null) {
                    continue; // NULL keys never join
                }
                index.entry(key).or_default().push(row as u32);
            }
        }
        Self { build, index }
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.index.len()
    }

    /// The build-side table.
    pub fn build_side(&self) -> &Table {
        &self.build
    }
}

/// Output schema of a join.
pub fn join_schema(probe: &Schema, build: &Schema, kind: JoinKind) -> Schema {
    match kind {
        JoinKind::LeftSemi | JoinKind::LeftAnti => probe.clone(),
        JoinKind::Inner | JoinKind::LeftOuter => {
            let mut fields: Vec<Field> = probe.fields().to_vec();
            for f in build.fields() {
                assert!(
                    probe.fields().iter().all(|p| p.name != f.name),
                    "duplicate column {:?} across join sides",
                    f.name
                );
                let mut f = f.clone();
                if kind == JoinKind::LeftOuter {
                    f.nullable = true;
                }
                fields.push(f);
            }
            Schema::new(fields)
        }
    }
}

/// Probe `probe` against `table`, morsel-parallel, producing the joined
/// result. Each morsel is a cooperative cancellation point when a token
/// is supplied.
pub fn probe_join(
    probe: &Table,
    table: &JoinTable,
    probe_key_cols: &[usize],
    kind: JoinKind,
    driver: &MorselDriver,
    cancel: Option<&CancelToken>,
) -> Table {
    let out_schema = join_schema(probe.schema(), table.build.schema(), kind);
    let cols = join_key_cols(probe, probe_key_cols);

    let parts = driver.run(
        probe.rows(),
        |_| (Vec::<usize>::new(), Vec::<Option<u32>>::new()),
        |(probe_idx, build_idx), _, m| {
            check_cancel(cancel);
            for row in m.range() {
                let key = join_key_of(&cols, row);
                let matches = if key.contains(&KeyPart::Null) {
                    None
                } else {
                    table.index.get(&key)
                };
                match kind {
                    JoinKind::Inner => {
                        if let Some(rows) = matches {
                            for &b in rows {
                                probe_idx.push(row);
                                build_idx.push(Some(b));
                            }
                        }
                    }
                    JoinKind::LeftOuter => match matches {
                        Some(rows) => {
                            for &b in rows {
                                probe_idx.push(row);
                                build_idx.push(Some(b));
                            }
                        }
                        None => {
                            probe_idx.push(row);
                            build_idx.push(None);
                        }
                    },
                    JoinKind::LeftSemi => {
                        if matches.is_some() {
                            probe_idx.push(row);
                        }
                    }
                    JoinKind::LeftAnti => {
                        if matches.is_none() {
                            probe_idx.push(row);
                        }
                    }
                }
            }
        },
    );

    let mut out = Table::empty(out_schema);
    for (probe_idx, build_idx) in parts {
        if probe_idx.is_empty() {
            continue;
        }
        let left = probe.gather(&probe_idx);
        let piece = match kind {
            JoinKind::LeftSemi | JoinKind::LeftAnti => left,
            JoinKind::Inner | JoinKind::LeftOuter => {
                let right = gather_optional(&table.build, &build_idx);
                let mut cols = left.columns().to_vec();
                cols.extend(right);
                Table::new(out.schema().clone(), cols)
            }
        };
        out.append(&piece);
    }
    out
}

/// Gather build rows where `idx[i]` may be None (left-outer miss → NULL row).
fn gather_optional(build: &Table, idx: &[Option<u32>]) -> Vec<Column> {
    if idx.iter().all(Option::is_some) {
        let dense: Vec<usize> = idx.iter().map(|i| i.expect("checked") as usize).collect();
        return build.gather(&dense).columns().to_vec();
    }
    let validity: Bitmap = idx.iter().map(Option::is_some).collect();
    let dense: Vec<usize> = idx.iter().map(|i| i.unwrap_or(0) as usize).collect();
    build
        .gather(&dense)
        .columns()
        .iter()
        .map(|c| match c.clone() {
            Column::I64(v, _) => Column::I64(v, Some(validity.clone())),
            Column::F64(v, _) => Column::F64(v, Some(validity.clone())),
            Column::Str(v, _) => Column::Str(v, Some(validity.clone())),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum AggState {
    Sum { sum: f64, any: bool },
    Count(i64),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, cnt: i64 },
    Distinct(FxSet<KeyPart>),
}

impl AggState {
    fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Sum => AggState::Sum {
                sum: 0.0,
                any: false,
            },
            AggFunc::Count => AggState::Count(0),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg { sum: 0.0, cnt: 0 },
            AggFunc::CountDistinct => AggState::Distinct(FxSet::default()),
        }
    }

    fn update(&mut self, v: &EvalVec, row: usize) {
        if !v.is_valid(row) {
            return; // SQL aggregates skip NULLs
        }
        match self {
            AggState::Sum { sum, any } => {
                *sum += numeric(v, row);
                *any = true;
            }
            AggState::Count(c) => *c += 1,
            AggState::Min(cur) => {
                let val = v.value(row);
                if cur.as_ref().is_none_or(|c| value_lt(&val, c)) {
                    *cur = Some(val);
                }
            }
            AggState::Max(cur) => {
                let val = v.value(row);
                if cur.as_ref().is_none_or(|c| value_lt(c, &val)) {
                    *cur = Some(val);
                }
            }
            AggState::Avg { sum, cnt } => {
                *sum += numeric(v, row);
                *cnt += 1;
            }
            AggState::Distinct(set) => {
                let part = match &v.data {
                    VecData::I64(d) => KeyPart::I64(d[row]),
                    VecData::F64(d) => KeyPart::I64(d[row].to_bits() as i64),
                    VecData::Str(d) => KeyPart::Str(d.get(row).into()),
                    VecData::Bool(d) => KeyPart::I64(i64::from(d[row])),
                };
                set.insert(part);
            }
        }
    }

    fn merge(&mut self, other: AggState) {
        match (self, other) {
            (AggState::Sum { sum, any }, AggState::Sum { sum: s2, any: a2 }) => {
                *sum += s2;
                *any |= a2;
            }
            (AggState::Count(c), AggState::Count(c2)) => *c += c2,
            (AggState::Min(cur), AggState::Min(other)) => {
                if let Some(o) = other {
                    if cur.as_ref().is_none_or(|c| value_lt(&o, c)) {
                        *cur = Some(o);
                    }
                }
            }
            (AggState::Max(cur), AggState::Max(other)) => {
                if let Some(o) = other {
                    if cur.as_ref().is_none_or(|c| value_lt(c, &o)) {
                        *cur = Some(o);
                    }
                }
            }
            (AggState::Avg { sum, cnt }, AggState::Avg { sum: s2, cnt: c2 }) => {
                *sum += s2;
                *cnt += c2;
            }
            (AggState::Distinct(set), AggState::Distinct(other)) => set.extend(other),
            _ => panic!("mismatched aggregate states"),
        }
    }
}

fn numeric(v: &EvalVec, row: usize) -> f64 {
    match &v.data {
        VecData::I64(d) => d[row] as f64,
        VecData::F64(d) => d[row],
        VecData::Bool(d) => f64::from(u8::from(d[row])),
        VecData::Str(_) => panic!("cannot sum strings"),
    }
}

/// Total order over values: NULL sorts last; numerics compare numerically.
fn value_lt(a: &Value, b: &Value) -> bool {
    value_cmp(a, b) == std::cmp::Ordering::Less
}

/// Comparison used by MIN/MAX and ORDER BY.
pub fn value_cmp(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (Value::Null, Value::Null) => Ordering::Equal,
        (Value::Null, _) => Ordering::Greater, // NULLs last
        (_, Value::Null) => Ordering::Less,
        (Value::I64(x), Value::I64(y)) => x.cmp(y),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        _ => {
            let x = a.as_f64();
            let y = b.as_f64();
            x.partial_cmp(&y).unwrap_or(Ordering::Equal)
        }
    }
}

/// Hash-aggregate `input`, morsel-parallel with per-worker maps merged at
/// the end.
///
/// * `Single` computes final results directly.
/// * `Partial` emits mergeable state columns (`name`, or `name__sum` +
///   `name__cnt` for AVG) — the pre-aggregation of Figure 6(c).
/// * `Final` merges state columns produced by `Partial`.
pub fn aggregate(
    input: &Table,
    group_by: &[usize],
    aggs: &[AggSpec],
    phase: AggPhase,
    driver: &MorselDriver,
    params: &[Value],
) -> Table {
    aggregate_with(input, group_by, aggs, phase, driver, params, None, None)
}

/// [`aggregate`] with optional compiled input programs (one slot per
/// aggregate, aligned by position; see
/// [`OpPrograms::aggs`](crate::vm::OpPrograms::aggs)). Programs are bound
/// once against `input` here — a slot whose bind fails silently reverts to
/// the tree walker for that aggregate alone. `Final`-phase merges read
/// partial-state columns directly and take no programs.
#[allow(clippy::too_many_arguments)]
pub fn aggregate_with(
    input: &Table,
    group_by: &[usize],
    aggs: &[AggSpec],
    phase: AggPhase,
    driver: &MorselDriver,
    params: &[Value],
    programs: Option<&[(String, Option<ExprProgram>)]>,
    cancel: Option<&CancelToken>,
) -> Table {
    assert!(
        phase == AggPhase::Final
            || !aggs
                .iter()
                .any(|a| a.func == AggFunc::CountDistinct && phase == AggPhase::Partial),
        "count(distinct) cannot be pre-aggregated"
    );

    // In Final phase the input carries partial-state columns; aggregate
    // specs are rewritten to merge them.
    let effective: Vec<(AggFunc, Expr2)> = match phase {
        AggPhase::Final => aggs
            .iter()
            .map(|a| match a.func {
                AggFunc::Sum => (AggFunc::Sum, Expr2::Col(a.name.to_string())),
                AggFunc::Count => (AggFunc::Sum, Expr2::Col(a.name.clone())),
                AggFunc::Min => (AggFunc::Min, Expr2::Col(a.name.clone())),
                AggFunc::Max => (AggFunc::Max, Expr2::Col(a.name.clone())),
                AggFunc::Avg => (
                    AggFunc::Avg,
                    Expr2::Pair(format!("{}__sum", a.name), format!("{}__cnt", a.name)),
                ),
                AggFunc::CountDistinct => (AggFunc::CountDistinct, Expr2::Col(a.name.clone())),
            })
            .collect(),
        _ => aggs
            .iter()
            .map(|a| (a.func, Expr2::Expr(a.expr.clone())))
            .collect(),
    };

    let group_cols: Vec<&Column> = group_by.iter().map(|&i| input.column(i)).collect();

    // Bind compiled input programs once, not per morsel.
    let bound: Vec<Option<BoundProgram<'_>>> = match programs {
        Some(ps) if phase != AggPhase::Final && ps.len() == aggs.len() => ps
            .iter()
            .map(|(_, p)| p.as_ref().and_then(|p| p.bind(input).ok()))
            .collect(),
        _ => (0..aggs.len()).map(|_| None).collect(),
    };

    let maps = driver.run(
        input.rows(),
        |_| FxMap::<Key, Vec<AggState>>::default(),
        |map, _, m| {
            check_cancel(cancel);
            // Evaluate agg inputs once per morsel.
            let inputs: Vec<AggInput> = effective
                .iter()
                .zip(&bound)
                .map(|((func, e), b)| match b {
                    Some(bp) => AggInput::Vec(bp.eval(input, m.range(), params)),
                    None => AggInput::eval(e, *func, input, m.range(), params),
                })
                .collect();
            for row in m.range() {
                let key = key_of(&group_cols, row);
                let states = map
                    .entry(key)
                    .or_insert_with(|| effective.iter().map(|(f, _)| AggState::new(*f)).collect());
                let local = row - m.start;
                for (state, inp) in states.iter_mut().zip(&inputs) {
                    inp.update(state, local);
                }
            }
        },
    );

    // Merge worker maps.
    let mut merged: FxMap<Key, Vec<AggState>> = FxMap::default();
    for map in maps {
        for (k, states) in map {
            match merged.entry(k) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(states);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (a, b) in e.get_mut().iter_mut().zip(states) {
                        a.merge(b);
                    }
                }
            }
        }
    }

    // Global aggregate over empty input still yields one row (Final/Single).
    if merged.is_empty() && group_by.is_empty() && phase != AggPhase::Partial {
        merged.insert(
            Vec::new(),
            effective.iter().map(|(f, _)| AggState::new(*f)).collect(),
        );
    }

    // MIN/MAX output columns take the *static* type of their input
    // expression (evaluated over zero rows), so empty partials keep the
    // same schema as populated ones.
    let minmax_types: Vec<DataType> = effective
        .iter()
        .map(|(func, e)| match func {
            AggFunc::Min | AggFunc::Max => {
                let v = match e {
                    Expr2::Expr(x) => eval(x, input, 0..0, params),
                    Expr2::Col(name) => {
                        eval(&crate::expr::Expr::Col(name.clone()), input, 0..0, params)
                    }
                    Expr2::Pair(..) => unreachable!("pairs are AVG-only"),
                };
                v.into_column().1
            }
            _ => DataType::Float64,
        })
        .collect();

    build_agg_output(input, group_by, aggs, phase, merged, &minmax_types)
}

/// How an aggregate reads its input in a given phase.
enum Expr2 {
    Expr(crate::expr::Expr),
    Col(String),
    Pair(String, String),
}

enum AggInput {
    Vec(EvalVec),
    /// AVG merge: partial sums and counts.
    Pair(EvalVec, EvalVec),
}

impl AggInput {
    fn eval(
        e: &Expr2,
        _func: AggFunc,
        table: &Table,
        range: std::ops::Range<usize>,
        params: &[Value],
    ) -> Self {
        match e {
            Expr2::Expr(x) => AggInput::Vec(eval(x, table, range, params)),
            Expr2::Col(name) => AggInput::Vec(eval(
                &crate::expr::Expr::Col(name.clone()),
                table,
                range,
                params,
            )),
            Expr2::Pair(s, c) => AggInput::Pair(
                eval(
                    &crate::expr::Expr::Col(s.clone()),
                    table,
                    range.clone(),
                    params,
                ),
                eval(&crate::expr::Expr::Col(c.clone()), table, range, params),
            ),
        }
    }

    fn update(&self, state: &mut AggState, row: usize) {
        match self {
            AggInput::Vec(v) => state.update(v, row),
            AggInput::Pair(sums, cnts) => {
                if let AggState::Avg { sum, cnt } = state {
                    if sums.is_valid(row) {
                        *sum += numeric(sums, row);
                        *cnt += match &cnts.data {
                            VecData::I64(d) => d[row],
                            VecData::F64(d) => d[row] as i64,
                            _ => panic!("count column must be numeric"),
                        };
                    }
                } else {
                    panic!("paired input only for AVG merge");
                }
            }
        }
    }
}

fn build_agg_output(
    input: &Table,
    group_by: &[usize],
    aggs: &[AggSpec],
    phase: AggPhase,
    merged: FxMap<Key, Vec<AggState>>,
    minmax_types: &[DataType],
) -> Table {
    // Output schema: group columns keep their input field definitions.
    let mut fields: Vec<Field> = group_by
        .iter()
        .map(|&i| input.schema().fields()[i].clone())
        .collect();
    for a in aggs {
        match (phase, a.func) {
            (AggPhase::Partial, AggFunc::Avg) => {
                fields.push(Field::new(format!("{}__sum", a.name), DataType::Float64));
                fields.push(Field::new(format!("{}__cnt", a.name), DataType::Int64));
            }
            (_, AggFunc::Sum) | (_, AggFunc::Avg) => {
                fields.push(Field::nullable(a.name.clone(), DataType::Float64));
            }
            (_, AggFunc::Count) | (_, AggFunc::CountDistinct) => {
                fields.push(Field::new(a.name.clone(), DataType::Int64));
            }
            (_, AggFunc::Min) | (_, AggFunc::Max) => {
                let idx = aggs
                    .iter()
                    .position(|x| std::ptr::eq(x, a))
                    .expect("in aggs");
                fields.push(Field::nullable(a.name.clone(), minmax_types[idx]));
            }
        }
    }
    let schema = Schema::new(fields);
    let mut columns: Vec<Column> = schema
        .fields()
        .iter()
        .map(|f| Column::empty(f.dtype))
        .collect();

    for (key, states) in merged {
        for (i, part) in key.iter().enumerate() {
            let v = match part {
                KeyPart::I64(x) => {
                    if input.schema().fields()[group_by[i]].dtype == DataType::Float64 {
                        Value::F64(f64::from_bits(*x as u64))
                    } else {
                        Value::I64(*x)
                    }
                }
                // Group-by keys come from `key_of`, which keeps f64 bits in
                // the I64 variant; F64 belongs to the join/partition key
                // domain but decodes cleanly if it ever shows up here.
                KeyPart::F64(bits) => Value::F64(f64::from_bits(*bits)),
                KeyPart::Str(s) => Value::Str(s.to_string()),
                KeyPart::Null => Value::Null,
            };
            columns[i].push_value(&v);
        }
        let mut c = group_by.len();
        for (state, a) in states.into_iter().zip(aggs) {
            match (phase, state) {
                (AggPhase::Partial, AggState::Avg { sum, cnt }) => {
                    columns[c].push_value(&Value::F64(sum));
                    columns[c + 1].push_value(&Value::I64(cnt));
                    c += 2;
                    continue;
                }
                (_, AggState::Sum { sum, any }) => {
                    // COUNT merged in the Final phase sums integer counts.
                    let v = if a.func == AggFunc::Count {
                        Value::I64(sum as i64)
                    } else if any {
                        Value::F64(sum)
                    } else {
                        Value::Null
                    };
                    columns[c].push_value(&v);
                }
                (_, AggState::Count(n)) => columns[c].push_value(&Value::I64(n)),
                (_, AggState::Avg { sum, cnt }) => {
                    columns[c].push_value(&if cnt > 0 {
                        Value::F64(sum / cnt as f64)
                    } else {
                        Value::Null
                    });
                }
                (_, AggState::Min(v)) | (_, AggState::Max(v)) => {
                    columns[c].push_value(&v.unwrap_or(Value::Null));
                }
                (_, AggState::Distinct(set)) => {
                    columns[c].push_value(&Value::I64(set.len() as i64));
                }
            }
            let _ = a;
            c += 1;
        }
    }
    Table::new(schema, columns)
}

// ---------------------------------------------------------------------------
// Sort
// ---------------------------------------------------------------------------

/// Sort a table by `keys`, optionally truncating to `limit` rows.
pub fn sort_table(input: &Table, keys: &[SortKey], limit: Option<usize>) -> Table {
    let key_cols: Vec<(usize, bool)> = keys
        .iter()
        .map(|k| (input.schema().index_of(&k.column), k.desc))
        .collect();
    let mut indices: Vec<usize> = (0..input.rows()).collect();
    indices.sort_by(|&a, &b| {
        for &(c, desc) in &key_cols {
            let va = input.value(a, c);
            let vb = input.value(b, c);
            let ord = value_cmp(&va, &vb);
            if ord != std::cmp::Ordering::Equal {
                return if desc { ord.reverse() } else { ord };
            }
        }
        std::cmp::Ordering::Equal
    });
    if let Some(l) = limit {
        indices.truncate(l);
    }
    input.gather(&indices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use hsqp_numa::Topology;

    fn driver() -> MorselDriver {
        MorselDriver::new(2, &Topology::uniform(2), 64, true)
    }

    fn orders_like() -> Table {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("grp", DataType::Utf8),
            Field::new("v", DataType::Decimal),
        ]);
        let n = 200;
        let keys: Vec<i64> = (0..n).collect();
        let grps: hsqp_storage::StringColumn = (0..n)
            .map(|i| if i % 2 == 0 { "even" } else { "odd" })
            .collect();
        let vals: Vec<i64> = (0..n).map(|i| i * 100).collect();
        Table::new(
            schema,
            vec![
                Column::I64(keys, None),
                Column::Str(grps, None),
                Column::I64(vals, None),
            ],
        )
    }

    fn dim() -> Table {
        let schema = Schema::new(vec![
            Field::new("dk", DataType::Int64),
            Field::new("label", DataType::Utf8),
        ]);
        Table::new(
            schema,
            vec![
                Column::I64(vec![0, 1, 2, 0], None),
                Column::Str(["zero", "one", "two", "zero2"].into_iter().collect(), None),
            ],
        )
    }

    #[test]
    fn inner_join_matches_all_pairs() {
        let probe = orders_like(); // keys 0..200
        let build = dim(); // dk 0,1,2,0
        let jt = JoinTable::build(build, &[0]);
        let out = probe_join(&probe, &jt, &[0], JoinKind::Inner, &driver(), None);
        // Probe keys 0,1,2 match; key 0 matches twice.
        assert_eq!(out.rows(), 4);
        assert_eq!(out.schema().len(), 5);
        let mut labels: Vec<String> = (0..out.rows())
            .map(|r| out.value(r, 4).as_str().to_string())
            .collect();
        labels.sort();
        assert_eq!(labels, vec!["one", "two", "zero", "zero2"]);
    }

    #[test]
    fn left_outer_join_fills_nulls() {
        let probe = dim(); // dk 0,1,2,0
        let schema = Schema::new(vec![
            Field::new("bk", DataType::Int64),
            Field::new("payload", DataType::Int64),
        ]);
        let build = Table::new(
            schema,
            vec![Column::I64(vec![1], None), Column::I64(vec![99], None)],
        );
        let jt = JoinTable::build(build, &[0]);
        let out = probe_join(&probe, &jt, &[0], JoinKind::LeftOuter, &driver(), None);
        assert_eq!(out.rows(), 4);
        let matched: Vec<bool> = (0..4).map(|r| !out.value(r, 2).is_null()).collect();
        assert_eq!(matched.iter().filter(|&&b| b).count(), 1);
        // The matched row carries the payload.
        let idx = matched.iter().position(|&b| b).unwrap();
        assert_eq!(out.value(idx, 3), Value::I64(99));
    }

    #[test]
    fn semi_and_anti_partition_probe() {
        let probe = orders_like();
        let jt = JoinTable::build(dim(), &[0]);
        let semi = probe_join(&probe, &jt, &[0], JoinKind::LeftSemi, &driver(), None);
        let anti = probe_join(&probe, &jt, &[0], JoinKind::LeftAnti, &driver(), None);
        assert_eq!(semi.rows(), 3); // keys 0,1,2 (distinct probe rows)
        assert_eq!(anti.rows(), 197);
        assert_eq!(semi.schema().len(), probe.schema().len());
        assert_eq!(semi.rows() + anti.rows(), probe.rows());
    }

    #[test]
    fn decimal_keys_join_float64_keys_by_value() {
        // Probe: a Decimal column holding 1.00, 2.50, 9.99 as cents.
        let probe = Table::new(
            Schema::new(vec![Field::new("cost", DataType::Decimal)]),
            vec![Column::I64(vec![100, 250, 999], None)],
        );
        // Build: Float64 keys as an aggregate (e.g. MIN) would produce them.
        let build = Table::new(
            Schema::new(vec![Field::new("min_cost", DataType::Float64)]),
            vec![Column::F64(vec![2.5, 7.0], None)],
        );
        let jt = JoinTable::build(build, &[0]);
        let out = probe_join(&probe, &jt, &[0], JoinKind::LeftSemi, &driver(), None);
        assert_eq!(out.rows(), 1, "2.50 must match the f64 key 2.5");
        // The surviving probe row keeps its fixed-point representation.
        assert_eq!(out.value(0, 0), Value::I64(250));
        // Decimal ⋈ Decimal still joins (both sides canonicalized).
        let renamed = Table::new(
            Schema::new(vec![Field::new("c2", DataType::Decimal)]),
            vec![Column::I64(vec![100, 250, 999], None)],
        );
        let jt = JoinTable::build(renamed, &[0]);
        let out = probe_join(&probe, &jt, &[0], JoinKind::Inner, &driver(), None);
        assert_eq!(out.rows(), 3);
    }

    #[test]
    fn i64_f64_exact_roundtrip_edges() {
        assert_eq!(i64_as_f64_exact(0), Some(0.0));
        assert_eq!(i64_as_f64_exact(-7), Some(-7.0));
        assert_eq!(i64_as_f64_exact(1 << 53), Some((1u64 << 53) as f64));
        // 2^53 + 1 is the first integer f64 cannot represent.
        assert_eq!(i64_as_f64_exact((1 << 53) + 1), None);
        // i64::MAX would round-trip through the saturating cast — must be
        // rejected explicitly.
        assert_eq!(i64_as_f64_exact(i64::MAX), None);
        // i64::MIN is a power of two, exactly representable.
        assert_eq!(i64_as_f64_exact(i64::MIN), Some(i64::MIN as f64));
        // Canonical zero folds the sign bit.
        assert_eq!(canon_f64_bits(-0.0), canon_f64_bits(0.0));
        assert_ne!(canon_f64_bits(-1.0), canon_f64_bits(1.0));
    }

    #[test]
    fn int64_keys_join_float64_keys_by_value() {
        let probe = Table::new(
            Schema::new(vec![Field::new("k", DataType::Int64)]),
            vec![Column::I64(vec![1, 2, 3, (1 << 53) + 1], None)],
        );
        let build = Table::new(
            Schema::new(vec![Field::new("f", DataType::Float64)]),
            vec![Column::F64(
                vec![2.0, 3.0, -0.0, ((1i64 << 53) + 2) as f64],
                None,
            )],
        );
        let jt = JoinTable::build(build, &[0]);
        let out = probe_join(&probe, &jt, &[0], JoinKind::LeftSemi, &driver(), None);
        // 2 and 3 match by value; 2^53+1 has no exact f64 peer.
        assert_eq!(out.rows(), 2);
        // Pure Int64 ⋈ Int64 is unchanged by canonicalization, including
        // keys beyond f64's exact-integer range.
        let big = Table::new(
            Schema::new(vec![Field::new("k2", DataType::Int64)]),
            vec![Column::I64(vec![1, (1 << 53) + 1, i64::MAX], None)],
        );
        let jt = JoinTable::build(big, &[0]);
        let out = probe_join(&probe, &jt, &[0], JoinKind::Inner, &driver(), None);
        assert_eq!(out.rows(), 2); // 1 and 2^53+1
    }

    #[test]
    fn null_keys_never_join() {
        let schema = Schema::new(vec![Field::nullable("k", DataType::Int64)]);
        let mut c = Column::empty(DataType::Int64);
        c.push_value(&Value::I64(1));
        c.push_value(&Value::Null);
        let probe = Table::new(schema.clone(), vec![c]);
        let mut b = Column::empty(DataType::Int64);
        b.push_value(&Value::I64(1));
        b.push_value(&Value::Null);
        let build = Table::new(
            Schema::new(vec![Field::nullable("bk", DataType::Int64)]),
            vec![b],
        );
        let jt = JoinTable::build(build, &[0]);
        let out = probe_join(&probe, &jt, &[0], JoinKind::Inner, &driver(), None);
        assert_eq!(out.rows(), 1); // only 1 = 1 joins; NULL ≠ NULL
    }

    #[test]
    fn grouped_aggregation() {
        let t = orders_like();
        let aggs = vec![
            AggSpec::new(AggFunc::Sum, col("v"), "total"),
            AggSpec::new(AggFunc::Count, lit(1), "cnt"),
            AggSpec::new(AggFunc::Min, col("k"), "lo"),
            AggSpec::new(AggFunc::Max, col("k"), "hi"),
            AggSpec::new(AggFunc::Avg, col("v"), "mean"),
        ];
        let out = aggregate(&t, &[1], &aggs, AggPhase::Single, &driver(), &[]);
        assert_eq!(out.rows(), 2);
        let g = out.schema().index_of("grp");
        for r in 0..2 {
            let name = out.value(r, g).as_str().to_string();
            let total = out.value(r, out.schema().index_of("total")).as_f64();
            let cnt = out.value(r, out.schema().index_of("cnt")).as_i64();
            let lo = out.value(r, out.schema().index_of("lo")).as_i64();
            assert_eq!(cnt, 100);
            if name == "even" {
                // sum of v (decimal /100) over even keys: sum(2i for i in 0..100) = 9900
                assert!((total - 9900.0).abs() < 1e-6, "{total}");
                assert_eq!(lo, 0);
            } else {
                assert!((total - 10000.0).abs() < 1e-6, "{total}");
                assert_eq!(lo, 1);
            }
        }
    }

    #[test]
    fn global_aggregate_on_empty_input_emits_one_row() {
        let t = Table::empty(orders_like().schema().clone());
        let aggs = vec![
            AggSpec::new(AggFunc::Count, lit(1), "cnt"),
            AggSpec::new(AggFunc::Sum, col("v"), "total"),
        ];
        let out = aggregate(&t, &[], &aggs, AggPhase::Single, &driver(), &[]);
        assert_eq!(out.rows(), 1);
        assert_eq!(out.value(0, 0), Value::I64(0));
        assert_eq!(out.value(0, 1), Value::Null); // SUM of nothing is NULL
    }

    #[test]
    fn partial_plus_final_equals_single() {
        let t = orders_like();
        let aggs = vec![
            AggSpec::new(AggFunc::Sum, col("v"), "total"),
            AggSpec::new(AggFunc::Avg, col("v"), "mean"),
            AggSpec::new(AggFunc::Count, lit(1), "cnt"),
        ];
        let single = aggregate(&t, &[1], &aggs, AggPhase::Single, &driver(), &[]);
        // Split the input as two nodes would see it, pre-aggregate each.
        let half1 = t.gather(&(0..100).collect::<Vec<_>>());
        let half2 = t.gather(&(100..200).collect::<Vec<_>>());
        let p1 = aggregate(&half1, &[1], &aggs, AggPhase::Partial, &driver(), &[]);
        let mut partials = aggregate(&half2, &[1], &aggs, AggPhase::Partial, &driver(), &[]);
        partials.append(&p1);
        let grp = partials.schema().index_of("grp");
        let fin = aggregate(&partials, &[grp], &aggs, AggPhase::Final, &driver(), &[]);
        let sorted_single = sort_table(&single, &[SortKey::asc("grp")], None);
        let sorted_fin = sort_table(&fin, &[SortKey::asc("grp")], None);
        assert_eq!(sorted_single.rows(), sorted_fin.rows());
        for r in 0..sorted_single.rows() {
            for c in 0..sorted_single.schema().len() {
                let a = sorted_single.value(r, c);
                let b = sorted_fin.value(r, c);
                match (&a, &b) {
                    (Value::F64(x), Value::F64(y)) => assert!((x - y).abs() < 1e-9),
                    _ => assert_eq!(a, b),
                }
            }
        }
    }

    #[test]
    fn count_distinct() {
        let t = orders_like();
        let aggs = vec![AggSpec::new(AggFunc::CountDistinct, col("grp"), "groups")];
        let out = aggregate(&t, &[], &aggs, AggPhase::Single, &driver(), &[]);
        assert_eq!(out.value(0, 0), Value::I64(2));
    }

    #[test]
    #[should_panic(expected = "cannot be pre-aggregated")]
    fn count_distinct_rejects_partial_phase() {
        let t = orders_like();
        let aggs = vec![AggSpec::new(AggFunc::CountDistinct, col("k"), "d")];
        aggregate(&t, &[], &aggs, AggPhase::Partial, &driver(), &[]);
    }

    #[test]
    fn sort_orders_and_limits() {
        let t = orders_like();
        let out = sort_table(&t, &[SortKey::desc("k")], Some(3));
        assert_eq!(out.rows(), 3);
        assert_eq!(out.value(0, 0), Value::I64(199));
        assert_eq!(out.value(2, 0), Value::I64(197));
        let out = sort_table(&t, &[SortKey::asc("grp"), SortKey::desc("k")], Some(2));
        assert_eq!(out.value(0, 1), Value::Str("even".into()));
        assert_eq!(out.value(0, 0), Value::I64(198));
    }

    #[test]
    fn value_cmp_total_order() {
        use std::cmp::Ordering::*;
        assert_eq!(value_cmp(&Value::I64(1), &Value::I64(2)), Less);
        assert_eq!(value_cmp(&Value::F64(2.0), &Value::I64(1)), Greater);
        assert_eq!(value_cmp(&Value::Null, &Value::I64(1)), Greater); // NULLs last
        assert_eq!(
            value_cmp(&Value::Str("a".into()), &Value::Str("b".into())),
            Less
        );
    }
}
