//! Versioned binary serialization of plans, stages, values, and tables —
//! the encoding the out-of-process coordinator ships to `hsqp-node`
//! processes.
//!
//! The format is deliberately explicit: every top-level envelope opens
//! with [`SERIAL_MAGIC`] and [`SERIAL_VERSION`], every enum variant is a
//! tag byte, every list a `u32` count, every string a `u32` length plus
//! UTF-8 bytes, all integers little-endian. Decoding validates tags,
//! lengths, and the version; schema drift between coordinator and node
//! builds fails loudly at decode time instead of silently mis-executing —
//! the same fail-loud stance `BoundProgram::bind` takes for compiled
//! expressions.
//!
//! Nodes receive *plans*, not compiled programs: expression compilation is
//! deterministic from the plan plus the (identical, generated) base-table
//! schemas, so each node compiles its own [`CompiledStage`] locally and
//! the wire format stays small and stable.
//!
//! [`CompiledStage`]: crate::vm::CompiledStage

use hsqp_storage::{DataType, Field, Schema, Table, Value};
use hsqp_tpch::TpchTable;

use crate::expr::{ArithOp, CmpOp, Expr};
use crate::plan::{AggFunc, AggPhase, AggSpec, ExchangeKind, JoinKind, MapExpr, Plan, SortKey};
use crate::queries::{Query, QueryStage, StageRole};
use crate::wire::{RowDeserializer, RowSerializer};

/// Magic number opening every serialized envelope ("PLAN").
pub const SERIAL_MAGIC: u32 = 0x504C_414E;
/// Version of the plan encoding. Bump on any incompatible change — the
/// round-trip tests pin the format, and decode rejects mismatches.
/// v2 added the tenant / deadline tail to stage envelopes.
pub const SERIAL_VERSION: u16 = 2;

// ---------------------------------------------------------------------------
// Primitive writers / reader
// ---------------------------------------------------------------------------

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt<T: ?Sized>(out: &mut Vec<u8>, v: Option<&T>, enc: impl FnOnce(&mut Vec<u8>, &T)) {
    match v {
        None => put_u8(out, 0),
        Some(x) => {
            put_u8(out, 1);
            enc(out, x);
        }
    }
}

fn put_vec<T>(out: &mut Vec<u8>, items: &[T], mut enc: impl FnMut(&mut Vec<u8>, &T)) {
    put_u32(out, items.len() as u32);
    for it in items {
        enc(out, it);
    }
}

pub(crate) fn put_strs(out: &mut Vec<u8>, items: &[String]) {
    put_vec(out, items, |o, s| put_str(o, s));
}

/// Cursor over an encoded buffer; every read validates bounds and tags.
pub(crate) struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

pub(crate) type DecodeResult<T> = Result<T, String>;

impl<'a> Rd<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(format!(
                "truncated input: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> DecodeResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> DecodeResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    pub(crate) fn u32(&mut self) -> DecodeResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    pub(crate) fn u64(&mut self) -> DecodeResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub(crate) fn i64(&mut self) -> DecodeResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub(crate) fn f64(&mut self) -> DecodeResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn str(&mut self) -> DecodeResult<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("invalid UTF-8 string: {e}"))
    }

    pub(crate) fn usize_val(&mut self) -> DecodeResult<usize> {
        Ok(self.u64()? as usize)
    }

    /// Consume and return every remaining byte (for trailing payloads that
    /// carry their own envelope, like an embedded table encoding).
    pub(crate) fn take_rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    fn opt<T>(
        &mut self,
        dec: impl FnOnce(&mut Self) -> DecodeResult<T>,
    ) -> DecodeResult<Option<T>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(dec(self)?)),
            t => Err(format!("invalid option tag {t}")),
        }
    }

    fn vec<T>(
        &mut self,
        mut dec: impl FnMut(&mut Self) -> DecodeResult<T>,
    ) -> DecodeResult<Vec<T>> {
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.pos.min(self.buf.len()) {
            // Each element takes ≥ 1 byte; a count beyond the remaining
            // bytes is corrupt and must not drive a huge allocation.
            return Err(format!("corrupt list count {n}"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(dec(self)?);
        }
        Ok(out)
    }

    pub(crate) fn strs(&mut self) -> DecodeResult<Vec<String>> {
        self.vec(|r| r.str())
    }

    pub(crate) fn finish(self) -> DecodeResult<()> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "{} trailing byte(s) after a complete value",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

fn check_envelope(r: &mut Rd<'_>) -> DecodeResult<()> {
    let magic = r.u32()?;
    if magic != SERIAL_MAGIC {
        return Err(format!("bad plan-encoding magic {magic:#x}"));
    }
    let version = r.u16()?;
    if version != SERIAL_VERSION {
        return Err(format!(
            "plan-encoding version mismatch: got {version}, this build speaks {SERIAL_VERSION}"
        ));
    }
    Ok(())
}

fn envelope(out: &mut Vec<u8>) {
    put_u32(out, SERIAL_MAGIC);
    put_u16(out, SERIAL_VERSION);
}

// ---------------------------------------------------------------------------
// Leaf enums
// ---------------------------------------------------------------------------

fn enc_table_ref(out: &mut Vec<u8>, t: TpchTable) {
    put_str(out, t.name());
}

fn dec_table_ref(r: &mut Rd<'_>) -> DecodeResult<TpchTable> {
    let name = r.str()?;
    TpchTable::from_name(&name).ok_or_else(|| format!("unknown TPC-H table {name:?}"))
}

fn enc_dtype(out: &mut Vec<u8>, d: DataType) {
    put_u8(
        out,
        match d {
            DataType::Int64 => 0,
            DataType::Date => 1,
            DataType::Decimal => 2,
            DataType::Float64 => 3,
            DataType::Utf8 => 4,
        },
    );
}

fn dec_dtype(r: &mut Rd<'_>) -> DecodeResult<DataType> {
    Ok(match r.u8()? {
        0 => DataType::Int64,
        1 => DataType::Date,
        2 => DataType::Decimal,
        3 => DataType::Float64,
        4 => DataType::Utf8,
        t => return Err(format!("invalid DataType tag {t}")),
    })
}

fn enc_cmp(out: &mut Vec<u8>, op: CmpOp) {
    put_u8(
        out,
        match op {
            CmpOp::Eq => 0,
            CmpOp::Ne => 1,
            CmpOp::Lt => 2,
            CmpOp::Le => 3,
            CmpOp::Gt => 4,
            CmpOp::Ge => 5,
        },
    );
}

fn dec_cmp(r: &mut Rd<'_>) -> DecodeResult<CmpOp> {
    Ok(match r.u8()? {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        t => return Err(format!("invalid CmpOp tag {t}")),
    })
}

fn enc_arith(out: &mut Vec<u8>, op: ArithOp) {
    put_u8(
        out,
        match op {
            ArithOp::Add => 0,
            ArithOp::Sub => 1,
            ArithOp::Mul => 2,
            ArithOp::Div => 3,
        },
    );
}

fn dec_arith(r: &mut Rd<'_>) -> DecodeResult<ArithOp> {
    Ok(match r.u8()? {
        0 => ArithOp::Add,
        1 => ArithOp::Sub,
        2 => ArithOp::Mul,
        3 => ArithOp::Div,
        t => return Err(format!("invalid ArithOp tag {t}")),
    })
}

fn enc_join_kind(out: &mut Vec<u8>, k: JoinKind) {
    put_u8(
        out,
        match k {
            JoinKind::Inner => 0,
            JoinKind::LeftOuter => 1,
            JoinKind::LeftSemi => 2,
            JoinKind::LeftAnti => 3,
        },
    );
}

fn dec_join_kind(r: &mut Rd<'_>) -> DecodeResult<JoinKind> {
    Ok(match r.u8()? {
        0 => JoinKind::Inner,
        1 => JoinKind::LeftOuter,
        2 => JoinKind::LeftSemi,
        3 => JoinKind::LeftAnti,
        t => return Err(format!("invalid JoinKind tag {t}")),
    })
}

fn enc_agg_func(out: &mut Vec<u8>, f: AggFunc) {
    put_u8(
        out,
        match f {
            AggFunc::Sum => 0,
            AggFunc::Min => 1,
            AggFunc::Max => 2,
            AggFunc::Count => 3,
            AggFunc::CountDistinct => 4,
            AggFunc::Avg => 5,
        },
    );
}

fn dec_agg_func(r: &mut Rd<'_>) -> DecodeResult<AggFunc> {
    Ok(match r.u8()? {
        0 => AggFunc::Sum,
        1 => AggFunc::Min,
        2 => AggFunc::Max,
        3 => AggFunc::Count,
        4 => AggFunc::CountDistinct,
        5 => AggFunc::Avg,
        t => return Err(format!("invalid AggFunc tag {t}")),
    })
}

fn enc_agg_phase(out: &mut Vec<u8>, p: AggPhase) {
    put_u8(
        out,
        match p {
            AggPhase::Single => 0,
            AggPhase::Partial => 1,
            AggPhase::Final => 2,
        },
    );
}

fn dec_agg_phase(r: &mut Rd<'_>) -> DecodeResult<AggPhase> {
    Ok(match r.u8()? {
        0 => AggPhase::Single,
        1 => AggPhase::Partial,
        2 => AggPhase::Final,
        t => return Err(format!("invalid AggPhase tag {t}")),
    })
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

fn enc_expr(out: &mut Vec<u8>, e: &Expr) {
    match e {
        Expr::Col(name) => {
            put_u8(out, 0);
            put_str(out, name);
        }
        Expr::LitI64(v) => {
            put_u8(out, 1);
            put_i64(out, *v);
        }
        Expr::LitF64(v) => {
            put_u8(out, 2);
            put_f64(out, *v);
        }
        Expr::LitStr(s) => {
            put_u8(out, 3);
            put_str(out, s);
        }
        Expr::Param(i) => {
            put_u8(out, 4);
            put_u64(out, *i as u64);
        }
        Expr::Cmp(op, a, b) => {
            put_u8(out, 5);
            enc_cmp(out, *op);
            enc_expr(out, a);
            enc_expr(out, b);
        }
        Expr::And(children) => {
            put_u8(out, 6);
            put_vec(out, children, enc_expr);
        }
        Expr::Or(children) => {
            put_u8(out, 7);
            put_vec(out, children, enc_expr);
        }
        Expr::Not(a) => {
            put_u8(out, 8);
            enc_expr(out, a);
        }
        Expr::Arith(op, a, b) => {
            put_u8(out, 9);
            enc_arith(out, *op);
            enc_expr(out, a);
            enc_expr(out, b);
        }
        Expr::Like(a, pat) => {
            put_u8(out, 10);
            enc_expr(out, a);
            put_str(out, pat);
        }
        Expr::InStr(a, opts) => {
            put_u8(out, 11);
            enc_expr(out, a);
            put_strs(out, opts);
        }
        Expr::InI64(a, opts) => {
            put_u8(out, 12);
            enc_expr(out, a);
            put_vec(out, opts, |o, v| put_i64(o, *v));
        }
        Expr::Substr(a, start, len) => {
            put_u8(out, 13);
            enc_expr(out, a);
            put_u64(out, *start as u64);
            put_u64(out, *len as u64);
        }
        Expr::ExtractYear(a) => {
            put_u8(out, 14);
            enc_expr(out, a);
        }
        Expr::Case(cond, then, els) => {
            put_u8(out, 15);
            enc_expr(out, cond);
            enc_expr(out, then);
            enc_expr(out, els);
        }
        Expr::IsNull(a) => {
            put_u8(out, 16);
            enc_expr(out, a);
        }
    }
}

fn dec_expr(r: &mut Rd<'_>) -> DecodeResult<Expr> {
    Ok(match r.u8()? {
        0 => Expr::Col(r.str()?),
        1 => Expr::LitI64(r.i64()?),
        2 => Expr::LitF64(r.f64()?),
        3 => Expr::LitStr(r.str()?),
        4 => Expr::Param(r.usize_val()?),
        5 => {
            let op = dec_cmp(r)?;
            let a = dec_expr(r)?;
            let b = dec_expr(r)?;
            Expr::Cmp(op, Box::new(a), Box::new(b))
        }
        6 => Expr::And(r.vec(dec_expr)?),
        7 => Expr::Or(r.vec(dec_expr)?),
        8 => Expr::Not(Box::new(dec_expr(r)?)),
        9 => {
            let op = dec_arith(r)?;
            let a = dec_expr(r)?;
            let b = dec_expr(r)?;
            Expr::Arith(op, Box::new(a), Box::new(b))
        }
        10 => {
            let a = dec_expr(r)?;
            Expr::Like(Box::new(a), r.str()?)
        }
        11 => {
            let a = dec_expr(r)?;
            Expr::InStr(Box::new(a), r.strs()?)
        }
        12 => {
            let a = dec_expr(r)?;
            Expr::InI64(Box::new(a), r.vec(|x| x.i64())?)
        }
        13 => {
            let a = dec_expr(r)?;
            let start = r.usize_val()?;
            let len = r.usize_val()?;
            Expr::Substr(Box::new(a), start, len)
        }
        14 => Expr::ExtractYear(Box::new(dec_expr(r)?)),
        15 => {
            let cond = dec_expr(r)?;
            let then = dec_expr(r)?;
            let els = dec_expr(r)?;
            Expr::Case(Box::new(cond), Box::new(then), Box::new(els))
        }
        16 => Expr::IsNull(Box::new(dec_expr(r)?)),
        t => return Err(format!("invalid Expr tag {t}")),
    })
}

// ---------------------------------------------------------------------------
// Plans
// ---------------------------------------------------------------------------

fn enc_plan(out: &mut Vec<u8>, p: &Plan) {
    match p {
        Plan::Scan {
            table,
            filter,
            project,
        } => {
            put_u8(out, 0);
            enc_table_ref(out, *table);
            put_opt(out, filter.as_ref(), enc_expr);
            put_opt(out, project.as_ref(), |o, cols| put_strs(o, cols));
        }
        Plan::TempScan { name, project } => {
            put_u8(out, 1);
            put_str(out, name);
            put_opt(out, project.as_ref(), |o, cols| put_strs(o, cols));
        }
        Plan::Filter { input, predicate } => {
            put_u8(out, 2);
            enc_plan(out, input);
            enc_expr(out, predicate);
        }
        Plan::Map { input, outputs } => {
            put_u8(out, 3);
            enc_plan(out, input);
            put_vec(out, outputs, |o, m: &MapExpr| {
                put_str(o, &m.name);
                enc_expr(o, &m.expr);
                put_opt(o, m.dtype.as_ref(), |o2, d| enc_dtype(o2, *d));
            });
        }
        Plan::HashJoin {
            probe,
            build,
            probe_keys,
            build_keys,
            kind,
        } => {
            put_u8(out, 4);
            enc_plan(out, probe);
            enc_plan(out, build);
            put_strs(out, probe_keys);
            put_strs(out, build_keys);
            enc_join_kind(out, *kind);
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
            phase,
        } => {
            put_u8(out, 5);
            enc_plan(out, input);
            put_strs(out, group_by);
            put_vec(out, aggs, |o, a: &AggSpec| {
                enc_agg_func(o, a.func);
                enc_expr(o, &a.expr);
                put_str(o, &a.name);
            });
            enc_agg_phase(out, *phase);
        }
        Plan::Sort { input, keys, limit } => {
            put_u8(out, 6);
            enc_plan(out, input);
            put_vec(out, keys, |o, k: &SortKey| {
                put_str(o, &k.column);
                put_u8(o, k.desc as u8);
            });
            put_opt(out, limit.as_ref(), |o, l| put_u64(o, *l as u64));
        }
        Plan::Exchange { input, kind } => {
            put_u8(out, 7);
            enc_plan(out, input);
            match kind {
                ExchangeKind::HashPartition(cols) => {
                    put_u8(out, 0);
                    put_strs(out, cols);
                }
                ExchangeKind::Broadcast => put_u8(out, 1),
                ExchangeKind::Gather => put_u8(out, 2),
            }
        }
    }
}

fn dec_plan(r: &mut Rd<'_>) -> DecodeResult<Plan> {
    Ok(match r.u8()? {
        0 => Plan::Scan {
            table: dec_table_ref(r)?,
            filter: r.opt(dec_expr)?,
            project: r.opt(|x| x.strs())?,
        },
        1 => Plan::TempScan {
            name: r.str()?,
            project: r.opt(|x| x.strs())?,
        },
        2 => Plan::Filter {
            input: Box::new(dec_plan(r)?),
            predicate: dec_expr(r)?,
        },
        3 => Plan::Map {
            input: Box::new(dec_plan(r)?),
            outputs: r.vec(|x| {
                Ok(MapExpr {
                    name: x.str()?,
                    expr: dec_expr(x)?,
                    dtype: x.opt(dec_dtype)?,
                })
            })?,
        },
        4 => Plan::HashJoin {
            probe: Box::new(dec_plan(r)?),
            build: Box::new(dec_plan(r)?),
            probe_keys: r.strs()?,
            build_keys: r.strs()?,
            kind: dec_join_kind(r)?,
        },
        5 => Plan::Aggregate {
            input: Box::new(dec_plan(r)?),
            group_by: r.strs()?,
            aggs: r.vec(|x| {
                Ok(AggSpec {
                    func: dec_agg_func(x)?,
                    expr: dec_expr(x)?,
                    name: x.str()?,
                })
            })?,
            phase: dec_agg_phase(r)?,
        },
        6 => Plan::Sort {
            input: Box::new(dec_plan(r)?),
            keys: r.vec(|x| {
                Ok(SortKey {
                    column: x.str()?,
                    desc: x.u8()? != 0,
                })
            })?,
            limit: r.opt(|x| x.usize_val())?,
        },
        7 => {
            let input = Box::new(dec_plan(r)?);
            let kind = match r.u8()? {
                0 => ExchangeKind::HashPartition(r.strs()?),
                1 => ExchangeKind::Broadcast,
                2 => ExchangeKind::Gather,
                t => return Err(format!("invalid ExchangeKind tag {t}")),
            };
            Plan::Exchange { input, kind }
        }
        t => return Err(format!("invalid Plan tag {t}")),
    })
}

// ---------------------------------------------------------------------------
// Stages and queries
// ---------------------------------------------------------------------------

fn enc_role(out: &mut Vec<u8>, role: &StageRole) {
    match role {
        StageRole::Params => put_u8(out, 0),
        StageRole::Materialize(name) => {
            put_u8(out, 1);
            put_str(out, name);
        }
        StageRole::Result => put_u8(out, 2),
    }
}

fn dec_role(r: &mut Rd<'_>) -> DecodeResult<StageRole> {
    Ok(match r.u8()? {
        0 => StageRole::Params,
        1 => StageRole::Materialize(r.str()?),
        2 => StageRole::Result,
        t => return Err(format!("invalid StageRole tag {t}")),
    })
}

fn enc_stage_body(out: &mut Vec<u8>, stage: &QueryStage) {
    enc_plan(out, &stage.plan);
    enc_role(out, &stage.role);
    put_opt(out, stage.estimated_rows.as_ref(), |o, v| put_f64(o, *v));
    put_opt(out, stage.feedback_rows.as_ref(), |o, v| put_f64(o, *v));
}

fn dec_stage_body(r: &mut Rd<'_>) -> DecodeResult<QueryStage> {
    Ok(QueryStage {
        plan: dec_plan(r)?,
        role: dec_role(r)?,
        estimated_rows: r.opt(|x| x.f64())?,
        feedback_rows: r.opt(|x| x.f64())?,
    })
}

/// A decoded stage plus the serving-layer tags the coordinator attached:
/// which tenant submitted the query and how many microseconds of its
/// deadline budget remain (measured at encode time).
#[derive(Debug, Clone, PartialEq)]
pub struct StageEnvelope {
    /// The stage itself.
    pub stage: QueryStage,
    /// Submitting tenant, if the coordinator tagged one.
    pub tenant: Option<String>,
    /// Remaining deadline budget in microseconds, if the query has one.
    pub deadline_us: Option<u64>,
}

/// Encode one query stage (the unit the coordinator ships per `Stage`
/// command).
pub fn encode_stage(stage: &QueryStage) -> Vec<u8> {
    encode_stage_tagged(stage, None, None)
}

/// Encode one query stage together with its serving-layer tags (tenant
/// name and remaining deadline budget in microseconds).
pub fn encode_stage_tagged(
    stage: &QueryStage,
    tenant: Option<&str>,
    deadline_us: Option<u64>,
) -> Vec<u8> {
    let mut out = Vec::new();
    envelope(&mut out);
    enc_stage_body(&mut out, stage);
    put_opt(&mut out, tenant, put_str);
    put_opt(&mut out, deadline_us.as_ref(), |o, v| put_u64(o, *v));
    out
}

/// Decode one query stage; rejects version skew, unknown tags, truncated
/// input, and trailing garbage. Drops the serving-layer tags — use
/// [`decode_stage_tagged`] to keep them.
pub fn decode_stage(buf: &[u8]) -> DecodeResult<QueryStage> {
    Ok(decode_stage_tagged(buf)?.stage)
}

/// Decode one query stage together with its serving-layer tags (inverse
/// of [`encode_stage_tagged`]).
pub fn decode_stage_tagged(buf: &[u8]) -> DecodeResult<StageEnvelope> {
    let mut r = Rd::new(buf);
    check_envelope(&mut r)?;
    let stage = dec_stage_body(&mut r)?;
    let tenant = r.opt(|x| x.str())?;
    let deadline_us = r.opt(|x| x.u64())?;
    r.finish()?;
    Ok(StageEnvelope {
        stage,
        tenant,
        deadline_us,
    })
}

/// Encode a whole multi-stage query.
pub fn encode_query(q: &Query) -> Vec<u8> {
    let mut out = Vec::new();
    envelope(&mut out);
    put_u32(&mut out, q.number);
    put_vec(&mut out, &q.stages, enc_stage_body);
    out
}

/// Decode a whole multi-stage query (inverse of [`encode_query`]).
pub fn decode_query(buf: &[u8]) -> DecodeResult<Query> {
    let mut r = Rd::new(buf);
    check_envelope(&mut r)?;
    let number = r.u32()?;
    let stages = r.vec(dec_stage_body)?;
    r.finish()?;
    Ok(Query { stages, number })
}

// ---------------------------------------------------------------------------
// Values, schemas, tables
// ---------------------------------------------------------------------------

fn enc_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(out, 0),
        Value::I64(x) => {
            put_u8(out, 1);
            put_i64(out, *x);
        }
        Value::F64(x) => {
            put_u8(out, 2);
            put_f64(out, *x);
        }
        Value::Str(s) => {
            put_u8(out, 3);
            put_str(out, s);
        }
    }
}

fn dec_value(r: &mut Rd<'_>) -> DecodeResult<Value> {
    Ok(match r.u8()? {
        0 => Value::Null,
        1 => Value::I64(r.i64()?),
        2 => Value::F64(r.f64()?),
        3 => Value::Str(r.str()?),
        t => return Err(format!("invalid Value tag {t}")),
    })
}

/// Encode a list of scalar values (bound query parameters).
pub fn encode_values(values: &[Value]) -> Vec<u8> {
    let mut out = Vec::new();
    put_vec(&mut out, values, enc_value);
    out
}

/// Decode a list of scalar values from the front of `r`-style buffer.
pub fn decode_values(buf: &[u8]) -> DecodeResult<Vec<Value>> {
    let mut r = Rd::new(buf);
    let vals = r.vec(dec_value)?;
    r.finish()?;
    Ok(vals)
}

fn enc_schema(out: &mut Vec<u8>, schema: &Schema) {
    put_vec(out, schema.fields(), |o, f: &Field| {
        put_str(o, &f.name);
        enc_dtype(o, f.dtype);
        put_u8(o, f.nullable as u8);
    });
}

fn dec_schema(r: &mut Rd<'_>) -> DecodeResult<Schema> {
    let fields = r.vec(|x| {
        let name = x.str()?;
        let dtype = dec_dtype(x)?;
        let nullable = x.u8()? != 0;
        Ok(if nullable {
            Field::nullable(name, dtype)
        } else {
            Field::new(name, dtype)
        })
    })?;
    Ok(Schema::new(fields))
}

/// Encode a whole table: schema, row count, then the rows in the engine's
/// row-wise exchange format (Figure 8). Used to ship stage results and
/// parameter tables between node processes and the coordinator.
pub fn encode_table(table: &Table) -> Vec<u8> {
    let mut out = Vec::new();
    enc_schema(&mut out, table.schema());
    put_u64(&mut out, table.rows() as u64);
    let ser = RowSerializer::new(table.schema());
    ser.serialize_range(table, 0..table.rows(), &mut out);
    out
}

/// Decode a table produced by [`encode_table`].
pub fn decode_table(buf: &[u8]) -> DecodeResult<Table> {
    let mut r = Rd::new(buf);
    let schema = dec_schema(&mut r)?;
    let rows = r.u64()? as usize;
    let rest = &r.buf[r.pos..];
    let table = RowDeserializer::new(&schema).deserialize(rest);
    if table.rows() != rows {
        return Err(format!(
            "table decoded to {} rows, header said {rows}",
            table.rows()
        ));
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::tpch_query;

    #[test]
    fn all_22_tpch_queries_roundtrip() {
        for n in 1..=22 {
            let q = tpch_query(n).expect("handwritten query");
            let bytes = encode_query(&q);
            let back = decode_query(&bytes).expect("decode");
            assert_eq!(q, back, "Q{n} did not survive the round trip");
        }
    }

    #[test]
    fn stage_tags_roundtrip() {
        let q = tpch_query(6).unwrap();
        let stage = &q.stages[0];

        // Untagged stages survive through both the plain and tagged paths.
        let plain = encode_stage(stage);
        assert_eq!(&decode_stage(&plain).unwrap(), stage);
        let env = decode_stage_tagged(&plain).unwrap();
        assert_eq!(&env.stage, stage);
        assert_eq!(env.tenant, None);
        assert_eq!(env.deadline_us, None);

        // Tagged stages carry tenant and deadline through the round trip,
        // and the plain decoder still accepts (and drops) the tags.
        let tagged = encode_stage_tagged(stage, Some("gold"), Some(1_500_000));
        let env = decode_stage_tagged(&tagged).unwrap();
        assert_eq!(&env.stage, stage);
        assert_eq!(env.tenant.as_deref(), Some("gold"));
        assert_eq!(env.deadline_us, Some(1_500_000));
        assert_eq!(&decode_stage(&tagged).unwrap(), stage);
    }

    #[test]
    fn version_mismatch_fails_loudly() {
        let q = tpch_query(1).unwrap();
        let mut bytes = encode_query(&q);
        bytes[4] = 0xFF; // corrupt the version field
        let err = decode_query(&bytes).unwrap_err();
        assert!(err.contains("version mismatch"), "unexpected error: {err}");
    }

    #[test]
    fn corrupt_magic_and_truncation_fail() {
        let q = tpch_query(3).unwrap();
        let mut bytes = encode_query(&q);
        bytes[0] ^= 0xFF;
        assert!(decode_query(&bytes).unwrap_err().contains("magic"));
        let bytes = encode_query(&q);
        assert!(decode_query(&bytes[..bytes.len() - 3]).is_err());
        // Trailing garbage is rejected too.
        let mut bytes = encode_query(&q);
        bytes.push(0);
        assert!(decode_query(&bytes).unwrap_err().contains("trailing"));
    }

    #[test]
    fn values_roundtrip() {
        let vals = vec![
            Value::Null,
            Value::I64(-42),
            Value::F64(3.25),
            Value::Str("acid green".into()),
        ];
        assert_eq!(decode_values(&encode_values(&vals)).unwrap(), vals);
    }

    #[test]
    fn tables_roundtrip() {
        let db = hsqp_tpch::TpchDb::generate(0.001);
        for (kind, table) in db.into_tables() {
            let back = decode_table(&encode_table(&table)).expect("decode table");
            assert_eq!(back.schema(), table.schema(), "{kind:?} schema");
            assert_eq!(back.rows(), table.rows(), "{kind:?} rows");
            for row in [0, table.rows() / 2, table.rows().saturating_sub(1)] {
                for col in 0..table.schema().len() {
                    assert_eq!(back.value(row, col), table.value(row, col));
                }
            }
        }
    }
}
