//! SPMD plan execution on one node.
//!
//! Every node of the cluster executes the same plan ([`NodeExec::execute`]);
//! [`Plan::Exchange`] nodes are where tuples cross server boundaries. The
//! executor materializes operator results per pipeline stage and uses the
//! node's [`MorselDriver`] for intra-node parallelism, so work stealing
//! applies to scans, probes, aggregation, partitioning, and deserialization
//! alike.

use std::collections::HashMap;
use std::ops::Deref;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::Sender;
use parking_lot::RwLock;

use hsqp_net::{Fabric, NodeId, QueryId};
use hsqp_numa::{AllocPolicy, SocketId, Topology};
use hsqp_storage::placement::{crc32, crc32_i64};
use hsqp_storage::{decimal_to_f64, Column, Schema, Table, Value};
use hsqp_tpch::TpchTable;

use crate::exchange::{
    encode_header, patch_header, MessagePool, MuxCmd, RecvHub, RecvMsg, FLAG_DUP, FLAG_LAST,
    HEADER_LEN,
};
use crate::expr::{eval, Expr};
use crate::local::MorselDriver;
use crate::ops::{
    aggregate_with, canon_f64_bits, i64_as_f64_exact, probe_join, sort_table, JoinTable,
};
use crate::plan::{ExchangeKind, MapExpr, Plan};
use crate::profile::{plan_node_count, NodeRecorder};
use crate::serve::CancelToken;
use crate::vm::{BoundProgram, CompiledStage, ExprProgram, OpPrograms};
use crate::wire::{RowDeserializer, RowSerializer};

/// How many serialized rows a send loop processes between cancellation
/// checks (the morsel-equivalent granularity of the row-at-a-time
/// broadcast/gather serializers).
const CANCEL_CHECK_ROWS: usize = 4096;

/// Shared, long-lived state of one simulated server node.
pub struct NodeCtx {
    /// This node's id.
    pub node: NodeId,
    /// Cluster size.
    pub nodes: u16,
    /// Worker pool configuration.
    pub driver: MorselDriver,
    /// NUMA topology of this server.
    pub topology: Arc<Topology>,
    /// Message-buffer allocation policy (Figure 9).
    pub alloc_policy: AllocPolicy,
    /// `Some(t)` switches the node into classic-exchange mode with `t`
    /// parallel units.
    pub classic_units: Option<u16>,
    /// Tuple bytes per network message (the paper uses 512 KB).
    pub message_capacity: usize,
    /// NUMA-aware registered-buffer pool.
    pub pool: Arc<MessagePool>,
    /// Receive routing point shared with the multiplexer.
    pub hub: Arc<RecvHub>,
    /// Command channel to the multiplexer thread.
    pub to_mux: Sender<MuxCmd>,
    /// Loaded base relations (this node's placement share).
    pub tables: RwLock<HashMap<TpchTable, Arc<Table>>>,
    /// Temporary relations materialized by in-flight queries' stages,
    /// namespaced per query so overlapping multi-stage queries cannot read
    /// (or clobber) each other's temps. The cluster inserts after each
    /// `Materialize` stage and removes the whole namespace when the query
    /// finishes, fails, or is cancelled.
    pub temps: RwLock<HashMap<QueryId, HashMap<String, Arc<Table>>>>,
    /// Rows deserialized per worker across all exchanges (skew diagnosis:
    /// with work stealing the loads balance; with static classic-exchange
    /// ownership a skewed partition overloads one unit).
    pub consume_loads: parking_lot::Mutex<Vec<u64>>,
    /// The network fabric (statistics).
    pub fabric: Arc<Fabric>,
}

impl NodeCtx {
    fn local_table(&self, t: TpchTable) -> Arc<Table> {
        self.tables
            .read()
            .get(&t)
            .unwrap_or_else(|| panic!("table {:?} not loaded on node {}", t.name(), self.node.0))
            .clone()
    }

    fn is_classic(&self) -> bool {
        self.classic_units.is_some()
    }

    /// This node's share of query `query`'s temp relation `name`.
    fn query_temp(&self, query: QueryId, name: &str) -> Arc<Table> {
        self.temps
            .read()
            .get(&query)
            .and_then(|ns| ns.get(name))
            .unwrap_or_else(|| {
                panic!(
                    "temp relation {name:?} of {query} not materialized on node {} \
                     (missing Materialize stage before this TempScan)",
                    self.node.0
                )
            })
            .clone()
    }
}

/// One operator's node-local result: either a freshly computed table or a
/// shared reference to an already materialized one (a base-relation or
/// temp-relation scan with no filter and no projection). Sharing avoids
/// deep-copying materialized CTEs on every `Plan::TempScan` — doubly
/// important with concurrent queries multiplying scan counts.
pub enum Batch {
    /// A table this operator computed and owns.
    Owned(Table),
    /// A shared, immutable materialized table.
    Shared(Arc<Table>),
}

impl Deref for Batch {
    type Target = Table;

    fn deref(&self) -> &Table {
        match self {
            Batch::Owned(t) => t,
            Batch::Shared(t) => t,
        }
    }
}

impl Batch {
    /// The table by value (clones only if it is shared and referenced
    /// elsewhere).
    pub fn into_table(self) -> Table {
        match self {
            Batch::Owned(t) => t,
            Batch::Shared(t) => Arc::try_unwrap(t).unwrap_or_else(|t| (*t).clone()),
        }
    }

    /// The table behind an `Arc` (no copy in the shared case).
    pub fn into_arc(self) -> Arc<Table> {
        match self {
            Batch::Owned(t) => Arc::new(t),
            Batch::Shared(t) => t,
        }
    }
}

/// Executes plans on one node, on behalf of one query.
pub struct NodeExec<'a> {
    ctx: &'a NodeCtx,
    query: QueryId,
    params: &'a [Value],
    next_exchange: AtomicU32,
    recorder: Option<&'a NodeRecorder>,
    programs: Option<&'a CompiledStage>,
    cancel: Option<&'a CancelToken>,
}

impl<'a> NodeExec<'a> {
    /// Executor for `query` with parameters bound and exchange ids starting
    /// at `exchange_base` (must be identical on all nodes for a given
    /// stage; distinct stages of one query use disjoint ranges). Temp
    /// relations materialized by the query's earlier stages are read from
    /// the node's per-query namespace.
    pub fn new(ctx: &'a NodeCtx, query: QueryId, params: &'a [Value], exchange_base: u32) -> Self {
        Self {
            ctx,
            query,
            params,
            next_exchange: AtomicU32::new(exchange_base),
            recorder: None,
            programs: None,
            cancel: None,
        }
    }

    /// Attach this node's profiling recorder: every operator then records
    /// a span cell (pre-order indexed) as it executes.
    pub fn with_recorder(mut self, recorder: Option<&'a NodeRecorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attach the stage's compiled expression programs (same pre-order
    /// operator numbering as the recorder). Operators without a program —
    /// or whose program fails to bind against the runtime table — fall
    /// back to the tree-walking evaluator.
    pub fn with_programs(mut self, programs: Option<&'a CompiledStage>) -> Self {
        self.programs = programs;
        self
    }

    /// Attach the query's cooperative cancellation token: operator morsel
    /// loops, send loops, and exchange waits then poll it and bail out by
    /// panicking (contained by the per-node `catch_unwind`), bounding
    /// cancel/deadline latency by one morsel instead of one stage.
    pub fn with_cancel(mut self, cancel: Option<&'a CancelToken>) -> Self {
        self.cancel = cancel;
        self
    }

    /// Panic out of the current operator if the query was cancelled or
    /// its deadline passed (no-op without a token).
    fn check_cancel(&self) {
        if let Some(token) = self.cancel {
            token.check_morsel();
        }
    }

    fn programs_at(&self, idx: usize) -> Option<&'a OpPrograms> {
        self.programs.and_then(|p| p.get(idx))
    }

    /// Execute `plan`, returning this node's share of the result.
    pub fn execute(&self, plan: &Plan) -> Batch {
        self.execute_at(plan, 0)
    }

    /// Execute the operator at pre-order index `idx` (see
    /// [`crate::profile::plan_labels`] for the numbering), recording its
    /// span when profiling is on.
    fn execute_at(&self, plan: &Plan, idx: usize) -> Batch {
        // Operator boundaries are cancellation points too, covering
        // operators whose inner loops run outside this module (join
        // build/probe, aggregation, sort).
        self.check_cancel();
        if let Some(rec) = self.recorder {
            rec.op_enter(idx);
        }
        let (out, rows_in) = match plan {
            Plan::Scan {
                table,
                filter,
                project,
            } => {
                let t = self.ctx.local_table(*table);
                let rows_in = t.rows() as u64;
                let out = match (filter, project) {
                    (Some(pred), project) => {
                        // Filter to a selection vector first, then gather
                        // only the surviving rows of the projected columns
                        // — never materializing pruned columns.
                        let prog = self.programs_at(idx).and_then(|p| p.filter.as_ref());
                        let indices = self.filter_indices(&t, pred, prog);
                        Batch::Owned(match project {
                            Some(names) => {
                                let cols: Vec<usize> =
                                    names.iter().map(|n| t.schema().index_of(n)).collect();
                                Table::new(
                                    t.schema().project(&cols),
                                    cols.iter().map(|&c| t.column(c).gather(&indices)).collect(),
                                )
                            }
                            None => t.gather(&indices),
                        })
                    }
                    (None, Some(names)) => Batch::Owned(project_table(&t, names)),
                    // No transform: share the loaded relation.
                    (None, None) => Batch::Shared(t),
                };
                (out, rows_in)
            }
            Plan::TempScan { name, project } => {
                let t = self.ctx.query_temp(self.query, name);
                let rows_in = t.rows() as u64;
                let out = match project {
                    Some(names) => Batch::Owned(project_table(&t, names)),
                    // No transform: share the materialized temp.
                    None => Batch::Shared(t),
                };
                (out, rows_in)
            }
            Plan::Filter { input, predicate } => {
                let t = self.execute_at(input, idx + 1);
                let rows_in = t.rows() as u64;
                let prog = self.programs_at(idx).and_then(|p| p.filter.as_ref());
                let indices = self.filter_indices(&t, predicate, prog);
                (Batch::Owned(t.gather(&indices)), rows_in)
            }
            Plan::Map { input, outputs } => {
                let t = self.execute_at(input, idx + 1);
                let rows_in = t.rows() as u64;
                let progs = self.programs_at(idx);
                (Batch::Owned(self.parallel_map(&t, outputs, progs)), rows_in)
            }
            Plan::HashJoin {
                probe,
                build,
                probe_keys,
                build_keys,
                kind,
            } => {
                // Pre-order: probe renders first, so it is idx + 1 and the
                // build subtree starts after the whole probe subtree.
                let build_idx_base = idx + 1 + plan_node_count(probe);
                let build_t = self.execute_at(build, build_idx_base).into_arc();
                let build_idx: Vec<usize> = build_keys
                    .iter()
                    .map(|k| build_t.schema().index_of(k))
                    .collect();
                let build_rows = build_t.rows() as u64;
                let jt = JoinTable::build_cancellable(build_t, &build_idx, self.cancel);
                let probe_t = self.execute_at(probe, idx + 1);
                let probe_idx: Vec<usize> = probe_keys
                    .iter()
                    .map(|k| probe_t.schema().index_of(k))
                    .collect();
                let rows_in = build_rows + probe_t.rows() as u64;
                let out = Batch::Owned(probe_join(
                    &probe_t,
                    &jt,
                    &probe_idx,
                    *kind,
                    &self.ctx.driver,
                    self.cancel,
                ));
                (out, rows_in)
            }
            Plan::Aggregate {
                input,
                group_by,
                aggs,
                phase,
            } => {
                let t = self.execute_at(input, idx + 1);
                let rows_in = t.rows() as u64;
                let group_idx: Vec<usize> =
                    group_by.iter().map(|g| t.schema().index_of(g)).collect();
                let out = Batch::Owned(aggregate_with(
                    &t,
                    &group_idx,
                    aggs,
                    *phase,
                    &self.ctx.driver,
                    self.params,
                    self.programs_at(idx).map(|p| p.aggs.as_slice()),
                    self.cancel,
                ));
                (out, rows_in)
            }
            Plan::Sort { input, keys, limit } => {
                let t = self.execute_at(input, idx + 1);
                let rows_in = t.rows() as u64;
                (Batch::Owned(sort_table(&t, keys, *limit)), rows_in)
            }
            Plan::Exchange { input, kind } => {
                let t = self.execute_at(input, idx + 1);
                let rows_in = t.rows() as u64;
                let id = self.next_exchange.fetch_add(1, Ordering::Relaxed);
                (Batch::Owned(self.run_exchange(idx, id, kind, &t)), rows_in)
            }
        };
        if let Some(rec) = self.recorder {
            rec.op_exit(idx, rows_in, out.rows() as u64);
        }
        out
    }

    // -- local pipelines ----------------------------------------------------

    /// Evaluate a predicate morsel-parallel into a sorted selection
    /// vector, via the compiled program when one is supplied (and binds).
    fn filter_indices(&self, t: &Table, pred: &Expr, prog: Option<&ExprProgram>) -> Vec<usize> {
        let bound: Option<BoundProgram<'_>> = prog.and_then(|p| p.bind(t).ok());
        let parts = self.ctx.driver.run(
            t.rows(),
            |_| Vec::<usize>::new(),
            |keep, _, m| {
                self.check_cancel();
                let mask = match &bound {
                    Some(b) => b.eval_mask(t, m.range(), self.params),
                    None => eval(pred, t, m.range(), self.params).into_mask(),
                };
                for (i, k) in mask.into_iter().enumerate() {
                    if k {
                        keep.push(m.start + i);
                    }
                }
            },
        );
        let mut indices: Vec<usize> = parts.into_iter().flatten().collect();
        indices.sort_unstable();
        indices
    }

    fn parallel_map(&self, t: &Table, outputs: &[MapExpr], progs: Option<&OpPrograms>) -> Table {
        // Bind this operator's compiled output programs once.
        let bound: Vec<Option<BoundProgram<'_>>> = match progs {
            Some(ps) if ps.outputs.len() == outputs.len() => ps
                .outputs
                .iter()
                .map(|(_, p)| p.as_ref().and_then(|p| p.bind(t).ok()))
                .collect(),
            _ => (0..outputs.len()).map(|_| None).collect(),
        };
        let parts = self.ctx.driver.run(
            t.rows(),
            |_| Vec::<(usize, Vec<Column>)>::new(),
            |acc, _, m| {
                self.check_cancel();
                // One index vector per morsel, shared by every raw
                // pass-through output.
                let mut indices: Option<Vec<usize>> = None;
                let cols: Vec<Column> = outputs
                    .iter()
                    .zip(&bound)
                    .map(|(o, b)| match (b, &o.expr) {
                        (Some(bp), _) => bp.eval(t, m.range(), self.params).into_column().0,
                        // Bare column references pass through raw: evaluating
                        // them would promote Decimal columns to f64 and lose
                        // the fixed-point representation (and the Date/Decimal
                        // logical type) across the projection.
                        (None, Expr::Col(name)) if o.dtype.is_none() => {
                            let indices = indices.get_or_insert_with(|| m.range().collect());
                            t.column(t.schema().index_of(name)).gather(indices)
                        }
                        _ => eval(&o.expr, t, m.range(), self.params).into_column().0,
                    })
                    .collect();
                acc.push((m.start, cols));
            },
        );
        let mut pieces: Vec<(usize, Vec<Column>)> = parts.into_iter().flatten().collect();
        pieces.sort_by_key(|(start, _)| *start);

        let schema = map_schema(t, outputs, self.params);
        let mut out = Table::empty(schema.clone());
        for (_, cols) in pieces {
            out.append(&Table::new(schema.clone(), cols));
        }
        out
    }

    // -- exchange -----------------------------------------------------------

    fn run_exchange(&self, op_idx: usize, id: u32, kind: &ExchangeKind, input: &Table) -> Table {
        let ctx = self.ctx;
        let n = ctx.nodes;
        let me = ctx.node;
        let schema = input.schema().clone();

        let expected_lasts = match kind {
            ExchangeKind::Gather if me.0 != 0 => 0,
            _ if n <= 1 => 0,
            _ => u32::from(n - 1),
        };
        ctx.hub.expect_lasts(self.query, id, expected_lasts);

        let send_t0 = Instant::now();
        match kind {
            ExchangeKind::HashPartition(keys) => {
                let key_idx: Vec<usize> = keys.iter().map(|k| schema.index_of(k)).collect();
                self.partition_and_send(op_idx, id, input, &key_idx);
            }
            ExchangeKind::Broadcast => self.broadcast_send(op_idx, id, input),
            ExchangeKind::Gather => self.gather_send(op_idx, id, input),
        }
        self.send_lasts(id, kind);
        if let Some(rec) = self.recorder {
            rec.add_send_time(op_idx, send_t0.elapsed());
        }

        // Gather keeps a local pass-through of node 0's own rows.
        let local_part = match kind {
            ExchangeKind::Gather if me.0 == 0 => Some(input.clone()),
            ExchangeKind::Gather => {
                // Non-coordinators produce nothing further.
                ctx.hub.finish(self.query, id);
                return Table::empty(schema);
            }
            _ => None,
        };

        let mut out = self.consume(op_idx, id, &schema);
        if let Some(local) = local_part {
            out.append(&local);
        }
        ctx.hub.finish(self.query, id);
        out
    }

    /// Figure 7 steps 1–4: consume, partition by CRC32, serialize into
    /// pooled messages, pass full messages to the multiplexer.
    fn partition_and_send(&self, op_idx: usize, id: u32, input: &Table, key_idx: &[usize]) {
        let ctx = self.ctx;
        let units = ctx.classic_units.unwrap_or(1);
        let buckets_total = ctx.nodes as usize * units as usize;
        let ser = RowSerializer::new(input.schema());
        // Same canonicalization as the join hash: a Decimal repartition key
        // must land on the node where the equal Float64 key lands.
        let key_cols = crate::ops::join_key_cols(input, key_idx);

        let leftovers = ctx.driver.run(
            input.rows(),
            |_| PartitionState::new(buckets_total),
            |st, w, m| {
                self.check_cancel();
                for row in m.range() {
                    let bucket = row_bucket(&key_cols, row, buckets_total);
                    let buf = st.buffer(bucket, ctx, w.socket);
                    ser.serialize_row(input, row, buf);
                    if st.bufs[bucket].as_ref().expect("just filled").0.len()
                        >= ctx.message_capacity
                    {
                        let (buf, socket) = st.bufs[bucket].take().expect("present");
                        self.flush_message(op_idx, id, bucket, buf, socket, w.socket, units);
                    }
                }
            },
        );
        // Flush partially-filled messages ("only the used part is sent").
        for st in leftovers {
            for (bucket, slot) in st.bufs.into_iter().enumerate() {
                if let Some((buf, socket)) = slot {
                    if buf.len() > HEADER_LEN {
                        self.flush_message(
                            op_idx,
                            id,
                            bucket,
                            buf,
                            socket,
                            ctx.driver.worker_socket(0),
                            units,
                        );
                    } else {
                        ctx.pool.recycle(socket);
                    }
                }
            }
        }
    }

    fn flush_message(
        &self,
        op_idx: usize,
        id: u32,
        bucket: usize,
        mut buf: Vec<u8>,
        mem_socket: SocketId,
        worker_socket: SocketId,
        units: u16,
    ) {
        let ctx = self.ctx;
        let target = NodeId((bucket / units as usize) as u16);
        let local_bucket = (bucket % units as usize) as u16;
        patch_header(self.query, id, 0, local_bucket, &mut buf);
        // Writing a remote buffer costs QPI time (Figure 9's effect).
        ctx.topology
            .charge_access(worker_socket, mem_socket, buf.len());
        if target == ctx.node {
            let queue = if ctx.is_classic() {
                local_bucket as usize
            } else {
                mem_socket.0 as usize
            };
            let data = Bytes::from(buf).slice(HEADER_LEN..);
            ctx.hub.deliver(
                self.query,
                id,
                queue,
                Some(RecvMsg { data, mem_socket }),
                false,
            );
            ctx.pool.recycle(mem_socket);
        } else {
            if let Some(rec) = self.recorder {
                rec.net_send(op_idx, buf.len() as u64, 1);
            }
            ctx.to_mux
                .send(MuxCmd::Send {
                    target,
                    payload: Bytes::from(buf),
                    pool_socket: mem_socket,
                })
                .expect("multiplexer alive");
        }
    }

    /// Broadcast: serialize once; remote copies share the buffer via the
    /// retain counter (Bytes refcount). Classic mode additionally ships one
    /// duplicate per remote *unit*, paying the (n·t−1)-copy network cost the
    /// paper attributes to classic exchange operators.
    fn broadcast_send(&self, op_idx: usize, id: u32, input: &Table) {
        let ctx = self.ctx;
        let ser = RowSerializer::new(input.schema());
        let units = ctx.classic_units.unwrap_or(1);
        let worker_socket = ctx.driver.worker_socket(0);

        let flush = |mut buf: Vec<u8>, socket: SocketId| {
            patch_header(self.query, id, 0, 0, &mut buf);
            ctx.topology.charge_access(worker_socket, socket, buf.len());
            // Local retain.
            let bytes = Bytes::from(buf);
            ctx.hub.deliver(
                self.query,
                id,
                if ctx.is_classic() {
                    0
                } else {
                    socket.0 as usize
                },
                Some(RecvMsg {
                    data: bytes.slice(HEADER_LEN..),
                    mem_socket: socket,
                }),
                false,
            );
            if ctx.nodes > 1 {
                let remote = u64::from(ctx.nodes - 1);
                if let Some(rec) = self.recorder {
                    // Each broadcast ships one wire copy per remote node
                    // (plus one per remote classic unit below).
                    rec.net_send(
                        op_idx,
                        bytes.len() as u64 * remote * u64::from(units),
                        remote * u64::from(units),
                    );
                }
                ctx.to_mux
                    .send(MuxCmd::Broadcast {
                        payload: bytes.clone(),
                        pool_socket: socket,
                        copies_per_node: 1,
                    })
                    .expect("multiplexer alive");
                // Classic: each further remote unit receives its own copy.
                for u in 1..units {
                    let mut dup = bytes.to_vec();
                    patch_header(self.query, id, FLAG_DUP, u, &mut dup);
                    ctx.to_mux
                        .send(MuxCmd::Broadcast {
                            payload: Bytes::from(dup),
                            pool_socket: socket,
                            copies_per_node: 1,
                        })
                        .expect("multiplexer alive");
                }
            }
            ctx.pool.recycle(socket);
        };

        let (mut buf, mut socket) = ctx
            .pool
            .take(ctx.alloc_policy, worker_socket, &ctx.topology);
        buf.resize(HEADER_LEN, 0);
        for row in 0..input.rows() {
            if row % CANCEL_CHECK_ROWS == 0 {
                self.check_cancel();
            }
            ser.serialize_row(input, row, &mut buf);
            if buf.len() >= ctx.message_capacity {
                flush(buf, socket);
                let fresh = ctx
                    .pool
                    .take(ctx.alloc_policy, worker_socket, &ctx.topology);
                buf = fresh.0;
                socket = fresh.1;
                buf.resize(HEADER_LEN, 0);
            }
        }
        if buf.len() > HEADER_LEN {
            flush(buf, socket);
        } else {
            ctx.pool.recycle(socket);
        }
    }

    /// Gather: ship everything to node 0.
    fn gather_send(&self, op_idx: usize, id: u32, input: &Table) {
        let ctx = self.ctx;
        if ctx.node.0 == 0 || ctx.nodes <= 1 {
            return; // coordinator keeps its rows as a local pass-through
        }
        let ser = RowSerializer::new(input.schema());
        let worker_socket = ctx.driver.worker_socket(0);
        let (mut buf, mut socket) = ctx
            .pool
            .take(ctx.alloc_policy, worker_socket, &ctx.topology);
        buf.resize(HEADER_LEN, 0);
        for row in 0..input.rows() {
            if row % CANCEL_CHECK_ROWS == 0 {
                self.check_cancel();
            }
            ser.serialize_row(input, row, &mut buf);
            if buf.len() >= ctx.message_capacity {
                let mut full = buf;
                patch_header(self.query, id, 0, 0, &mut full);
                if let Some(rec) = self.recorder {
                    rec.net_send(op_idx, full.len() as u64, 1);
                }
                ctx.to_mux
                    .send(MuxCmd::Send {
                        target: NodeId(0),
                        payload: Bytes::from(full),
                        pool_socket: socket,
                    })
                    .expect("multiplexer alive");
                let fresh = ctx
                    .pool
                    .take(ctx.alloc_policy, worker_socket, &ctx.topology);
                buf = fresh.0;
                socket = fresh.1;
                buf.resize(HEADER_LEN, 0);
            }
        }
        if buf.len() > HEADER_LEN {
            let mut full = buf;
            patch_header(self.query, id, 0, 0, &mut full);
            if let Some(rec) = self.recorder {
                rec.net_send(op_idx, full.len() as u64, 1);
            }
            ctx.to_mux
                .send(MuxCmd::Send {
                    target: NodeId(0),
                    payload: Bytes::from(full),
                    pool_socket: socket,
                })
                .expect("multiplexer alive");
        } else {
            ctx.pool.recycle(socket);
        }
    }

    fn send_lasts(&self, id: u32, kind: &ExchangeKind) {
        let ctx = self.ctx;
        if ctx.nodes <= 1 {
            return;
        }
        let targets: Vec<NodeId> = match kind {
            ExchangeKind::Gather => {
                if ctx.node.0 == 0 {
                    return;
                }
                vec![NodeId(0)]
            }
            _ => (0..ctx.nodes)
                .filter(|&t| t != ctx.node.0)
                .map(NodeId)
                .collect(),
        };
        for t in targets {
            let mut msg = Vec::with_capacity(HEADER_LEN);
            encode_header(self.query, id, FLAG_LAST, 0, 0, &mut msg);
            ctx.to_mux
                .send(MuxCmd::Send {
                    target: t,
                    payload: Bytes::from(msg),
                    pool_socket: SocketId(0),
                })
                .expect("multiplexer alive");
        }
    }

    /// Figure 7 steps 5–7: workers drain NUMA-local receive queues (5a),
    /// steal across sockets when idle (5b), deserialize (6), and hand the
    /// tuples to the next pipeline (7) — here: collect into a table.
    fn consume(&self, op_idx: usize, id: u32, schema: &Schema) -> Table {
        let ctx = self.ctx;
        let de = RowDeserializer::new(schema);
        let stealing = !ctx.is_classic();
        let workers = ctx.driver.workers();

        let query = self.query;
        let recorder = self.recorder;
        let cancel = self.cancel;
        let pieces: Vec<Table> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers as usize);
            for w in 0..workers {
                let de = &de;
                let hub = &ctx.hub;
                let topo = &ctx.topology;
                let driver = &ctx.driver;
                handles.push(scope.spawn(move || {
                    let socket = driver.worker_socket(w);
                    let own_queue = if stealing {
                        socket.0 as usize
                    } else {
                        w as usize
                    };
                    let mut out = Table::empty(de_schema(de));
                    let mut wait = Duration::ZERO;
                    let mut batches = 0u64;
                    loop {
                        // Time blocked on the receive hub: the worker's
                        // share of network wait at this exchange boundary.
                        // The cancellable pop polls the token while
                        // blocked, so a cancel/deadline lands even when
                        // this node is starved waiting on its peers.
                        let pop_t0 = Instant::now();
                        let msg = hub.pop_cancellable(query, id, own_queue, stealing, cancel);
                        wait += pop_t0.elapsed();
                        let Some(msg) = msg else { break };
                        batches += 1;
                        // Reading a remote message buffer crosses QPI.
                        topo.charge_access(socket, msg.mem_socket, msg.data.len());
                        let t = de.deserialize(&msg.data);
                        out.append(&t);
                    }
                    if let Some(rec) = recorder {
                        rec.add_consume(op_idx, wait, batches);
                    }
                    out
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("consumer worker panicked"))
                .collect()
        });

        {
            let mut loads = ctx.consume_loads.lock();
            loads.resize(workers as usize, 0);
            for (w, p) in pieces.iter().enumerate() {
                loads[w] += p.rows() as u64;
            }
        }

        let mut out = Table::empty(schema.clone());
        for p in pieces {
            out.append(&p);
        }
        out
    }
}

fn de_schema(de: &RowDeserializer) -> Schema {
    de.deserialize(&[]).schema().clone()
}

/// Project `t` to the named columns, in order.
fn project_table(t: &Table, names: &[String]) -> Table {
    let idx: Vec<usize> = names.iter().map(|n| t.schema().index_of(n)).collect();
    t.project(&idx)
}

/// Compute the output schema of a Map by evaluating over zero rows.
fn map_schema(t: &Table, outputs: &[MapExpr], params: &[Value]) -> Schema {
    use hsqp_storage::Field;
    let fields: Vec<Field> = outputs
        .iter()
        .map(|o| {
            let dtype = o.dtype.unwrap_or_else(|| match &o.expr {
                // Matches the raw pass-through in `parallel_map`: a bare
                // column reference keeps its input logical type.
                Expr::Col(name) => t.schema().fields()[t.schema().index_of(name)].dtype,
                _ => eval(&o.expr, t, 0..0, params).into_column().1,
            });
            Field::nullable(o.name.clone(), dtype)
        })
        .collect();
    Schema::new(fields)
}

/// Partition bucket of a row: CRC32 over the key attributes (§3.2).
///
/// Keys hash by *logical* value in a single numeric domain: a fixed-point
/// Decimal column (flagged `true`) hashes its promoted f64 value, an Int64
/// key that is exactly representable as f64 hashes those f64 bits, and
/// Float64 hashes its canonical bits (−0.0 folded onto +0.0) — so any two
/// sides of a mixed Int64/Decimal/Float64 join holding the same value land
/// on the same node when repartitioned (mirrors
/// [`crate::ops::join_key_of`]).
pub fn row_bucket(key_cols: &[(&Column, bool)], row: usize, buckets: usize) -> usize {
    // Canonical hash bytes of one numeric key value.
    fn i64_bytes(x: i64) -> [u8; 8] {
        match i64_as_f64_exact(x) {
            Some(f) => canon_f64_bits(f).to_le_bytes(),
            None => x.to_le_bytes(),
        }
    }
    let h = if key_cols.len() == 1 {
        match key_cols[0] {
            (Column::I64(v, _), true) => {
                crc32(&canon_f64_bits(decimal_to_f64(v[row])).to_le_bytes())
            }
            // Must agree with `placement::hash_partition` (same crc32_i64),
            // or partitioned placement stops avoiding shuffles.
            (Column::I64(v, _), false) => crc32_i64(v[row]),
            (Column::F64(v, _), _) => crc32(&canon_f64_bits(v[row]).to_le_bytes()),
            (Column::Str(v, _), _) => crc32(v.get(row).as_bytes()),
        }
    } else {
        let mut scratch = Vec::with_capacity(key_cols.len() * 8);
        for &(c, promote) in key_cols {
            match (c, promote) {
                (Column::I64(v, _), true) => {
                    scratch
                        .extend_from_slice(&canon_f64_bits(decimal_to_f64(v[row])).to_le_bytes());
                }
                (Column::I64(v, _), false) => scratch.extend_from_slice(&i64_bytes(v[row])),
                (Column::F64(v, _), _) => {
                    scratch.extend_from_slice(&canon_f64_bits(v[row]).to_le_bytes());
                }
                (Column::Str(v, _), _) => scratch.extend_from_slice(v.get(row).as_bytes()),
            }
        }
        crc32(&scratch)
    };
    h as usize % buckets
}

/// Per-worker partition/serialize state (one pending message per bucket).
struct PartitionState {
    bufs: Vec<Option<(Vec<u8>, SocketId)>>,
}

impl PartitionState {
    fn new(buckets: usize) -> Self {
        Self {
            bufs: (0..buckets).map(|_| None).collect(),
        }
    }

    fn buffer(&mut self, bucket: usize, ctx: &NodeCtx, worker_socket: SocketId) -> &mut Vec<u8> {
        if self.bufs[bucket].is_none() {
            let (mut buf, socket) = ctx
                .pool
                .take(ctx.alloc_policy, worker_socket, &ctx.topology);
            buf.resize(HEADER_LEN, 0);
            self.bufs[bucket] = Some((buf, socket));
        }
        &mut self.bufs[bucket].as_mut().expect("just set").0
    }
}
