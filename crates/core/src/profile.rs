//! Span-based query profiler: per stage × node × operator timings.
//!
//! The paper's core claims are about *where time goes* — compute vs network
//! wait on a globally scheduled fabric — so the engine measures exactly
//! that. While a stage executes, every node thread records into its own
//! [`NodeRecorder`]: lock-free atomic cells, one per plan operator, updated
//! with relaxed ordering so the morsel workers and exchange consumers of
//! one node can share the recorder without contending on a lock. When the
//! SPMD scope joins, the cluster merges the cells into a plain-data
//! [`StageProfile`] and appends it to the query's [`QueryProfile`] — the
//! concurrent dispatcher never touches a hot lock.
//!
//! Spans are *inclusive*: an operator's wall time covers its children
//! (execution on a node is a depth-first walk on one thread), so the sum of
//! the children's wall times can never exceed the parent's. Exchange
//! operators additionally split their time into a send side (partition +
//! serialize + hand-off to the multiplexer) and a receive side, where the
//! time consumers spend blocked in the receive hub is the query's visible
//! *network wait*.
//!
//! [`QueryProfile::render`] produces the `EXPLAIN ANALYZE` tree and
//! [`chrome_trace`] serializes profiles as Chrome trace-event JSON
//! (`chrome://tracing` / Perfetto), one process per query, one lane per
//! node.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use hsqp_net::QueryId;

use crate::plan::Plan;
use crate::vm::CompiledStage;

/// Number of operators in a plan tree (pre-order span cells are sized by
/// this; see [`plan_labels`] for the index order).
pub fn plan_node_count(plan: &Plan) -> usize {
    1 + plan
        .children()
        .iter()
        .map(|c| plan_node_count(c))
        .sum::<usize>()
}

/// Pre-order `(label, depth)` pairs for every operator of `plan`, derived
/// from the same renderer `--explain` uses so profile rows and explain
/// rows can never drift. Index `i` of this list is operator `i`'s span
/// cell: a node's first child is `i + 1`, its second child (joins) is
/// `i + 1 + plan_node_count(first_child)`.
pub fn plan_labels(plan: &Plan) -> Vec<(String, usize)> {
    labels_from(&plan.explain())
}

/// [`plan_labels`], with compiled-program ids woven into the labels when
/// the stage ran on the vector VM — profile rows then name the same `p0`,
/// `p1`, … programs `--explain` lists.
pub fn plan_labels_with(plan: &Plan, programs: Option<&CompiledStage>) -> Vec<(String, usize)> {
    match programs {
        Some(p) => labels_from(&p.annotate(plan)),
        None => plan_labels(plan),
    }
}

fn labels_from(explain: &str) -> Vec<(String, usize)> {
    explain
        .lines()
        .map(|line| {
            let trimmed = line.trim_start();
            let depth = (line.len() - trimmed.len()) / 2;
            (trimmed.to_string(), depth)
        })
        .collect()
}

const NS_UNSET: u64 = u64::MAX;

/// One operator's span cell: atomics so a node's morsel workers and
/// exchange consumers update it concurrently without locks.
#[derive(Debug)]
struct OpCell {
    start_ns: AtomicU64,
    end_ns: AtomicU64,
    rows_in: AtomicU64,
    rows_out: AtomicU64,
    batches: AtomicU64,
    bytes_sent: AtomicU64,
    messages_sent: AtomicU64,
    send_ns: AtomicU64,
    wait_ns: AtomicU64,
    wait_workers: AtomicU64,
}

impl OpCell {
    fn new() -> Self {
        Self {
            start_ns: AtomicU64::new(NS_UNSET),
            end_ns: AtomicU64::new(0),
            rows_in: AtomicU64::new(0),
            rows_out: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            messages_sent: AtomicU64::new(0),
            send_ns: AtomicU64::new(0),
            wait_ns: AtomicU64::new(0),
            wait_workers: AtomicU64::new(0),
        }
    }
}

/// One cluster node's recorder for one stage: a span cell per plan
/// operator, shared by reference with the node's worker threads.
#[derive(Debug)]
pub struct NodeRecorder {
    anchor: Instant,
    ops: Vec<OpCell>,
}

impl NodeRecorder {
    fn new(anchor: Instant, op_count: usize) -> Self {
        Self {
            anchor,
            ops: (0..op_count).map(|_| OpCell::new()).collect(),
        }
    }

    fn now_ns(&self) -> u64 {
        self.anchor.elapsed().as_nanos() as u64
    }

    /// Mark operator `idx` as entered (earliest entry wins).
    pub fn op_enter(&self, idx: usize) {
        let now = self.now_ns();
        self.ops[idx].start_ns.fetch_min(now, Ordering::Relaxed);
    }

    /// Mark operator `idx` as exited with its row counts (latest exit
    /// wins; counts accumulate).
    pub fn op_exit(&self, idx: usize, rows_in: u64, rows_out: u64) {
        let now = self.now_ns();
        let op = &self.ops[idx];
        op.end_ns.fetch_max(now, Ordering::Relaxed);
        op.rows_in.fetch_add(rows_in, Ordering::Relaxed);
        op.rows_out.fetch_add(rows_out, Ordering::Relaxed);
    }

    /// Attribute `count` wire messages totalling `bytes` payload bytes to
    /// exchange operator `idx`.
    pub fn net_send(&self, idx: usize, bytes: u64, count: u64) {
        let op = &self.ops[idx];
        op.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
        op.messages_sent.fetch_add(count, Ordering::Relaxed);
    }

    /// Attribute send-phase wall time (partition + serialize + hand-off)
    /// to exchange operator `idx`.
    pub fn add_send_time(&self, idx: usize, elapsed: Duration) {
        self.ops[idx]
            .send_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// One consume worker's contribution to exchange operator `idx`:
    /// `wait` spent blocked on the receive hub and `batches` messages
    /// deserialized.
    pub fn add_consume(&self, idx: usize, wait: Duration, batches: u64) {
        let op = &self.ops[idx];
        op.wait_ns
            .fetch_add(wait.as_nanos() as u64, Ordering::Relaxed);
        op.batches.fetch_add(batches, Ordering::Relaxed);
        op.wait_workers.fetch_add(1, Ordering::Relaxed);
    }
}

/// Recorders for one stage: one [`NodeRecorder`] per cluster node, all
/// sharing an anchor instant (the query's submission time) so spans from
/// different nodes and stages land on one timeline.
#[derive(Debug)]
pub struct StageRecorder {
    nodes: Vec<NodeRecorder>,
}

impl StageRecorder {
    /// Recorder for a stage of `op_count` operators on `nodes` nodes,
    /// timing everything relative to `anchor`.
    pub fn new(anchor: Instant, nodes: u16, op_count: usize) -> Self {
        Self {
            nodes: (0..nodes)
                .map(|_| NodeRecorder::new(anchor, op_count))
                .collect(),
        }
    }

    /// Node `node`'s recorder (shared with its execution thread).
    pub fn node(&self, node: usize) -> &NodeRecorder {
        &self.nodes[node]
    }

    /// Merge the recorded cells into a plain-data [`StageProfile`].
    pub fn finish(
        &self,
        plan: &Plan,
        programs: Option<&CompiledStage>,
        role: String,
        estimated_rows: Option<f64>,
        feedback_rows: Option<f64>,
    ) -> StageProfile {
        let labels = plan_labels_with(plan, programs);
        debug_assert_eq!(labels.len(), self.nodes.first().map_or(0, |n| n.ops.len()));
        let ops: Vec<OpProfile> = labels
            .into_iter()
            .enumerate()
            .map(|(idx, (label, depth))| OpProfile {
                label,
                depth,
                nodes: self
                    .nodes
                    .iter()
                    .enumerate()
                    .map(|(node, rec)| {
                        let c = &rec.ops[idx];
                        let start = c.start_ns.load(Ordering::Relaxed);
                        let end = c.end_ns.load(Ordering::Relaxed);
                        let (start, wall) = if start == NS_UNSET {
                            (0, 0)
                        } else {
                            (start, end.saturating_sub(start))
                        };
                        OpNodeProfile {
                            node: node as u16,
                            start: Duration::from_nanos(start),
                            wall: Duration::from_nanos(wall),
                            rows_in: c.rows_in.load(Ordering::Relaxed),
                            rows_out: c.rows_out.load(Ordering::Relaxed),
                            batches: c.batches.load(Ordering::Relaxed),
                            bytes_sent: c.bytes_sent.load(Ordering::Relaxed),
                            messages_sent: c.messages_sent.load(Ordering::Relaxed),
                            send: Duration::from_nanos(c.send_ns.load(Ordering::Relaxed)),
                            wait: Duration::from_nanos(c.wait_ns.load(Ordering::Relaxed)),
                            wait_workers: c.wait_workers.load(Ordering::Relaxed) as u32,
                        }
                    })
                    .collect(),
            })
            .collect();
        let start = ops
            .first()
            .map(|root| {
                root.nodes
                    .iter()
                    .map(|n| n.start)
                    .min()
                    .unwrap_or(Duration::ZERO)
            })
            .unwrap_or(Duration::ZERO);
        let end = ops
            .first()
            .map(|root| {
                root.nodes
                    .iter()
                    .map(|n| n.start + n.wall)
                    .max()
                    .unwrap_or(Duration::ZERO)
            })
            .unwrap_or(Duration::ZERO);
        StageProfile {
            role,
            estimated_rows,
            feedback_rows,
            start,
            wall: end.saturating_sub(start),
            ops,
        }
    }
}

/// One operator's span on one node.
#[derive(Debug, Clone)]
pub struct OpNodeProfile {
    /// Cluster node id.
    pub node: u16,
    /// Span start, measured from query submission.
    pub start: Duration,
    /// Inclusive wall time (covers the operator's children).
    pub wall: Duration,
    /// Rows consumed (for exchanges: rows this node fed into the shuffle).
    pub rows_in: u64,
    /// Rows produced (for exchanges: rows this node holds afterwards).
    pub rows_out: u64,
    /// Wire messages this node deserialized (exchanges only).
    pub batches: u64,
    /// Payload bytes this node handed to the multiplexer (exchanges only).
    pub bytes_sent: u64,
    /// Wire messages this node sent (exchanges only).
    pub messages_sent: u64,
    /// Send-phase wall time: partition, serialize, hand-off (exchanges).
    pub send: Duration,
    /// Total time consume workers spent blocked on the receive hub,
    /// summed across workers (exchanges only).
    pub wait: Duration,
    /// Number of consume workers that contributed to `wait`.
    pub wait_workers: u32,
}

impl OpNodeProfile {
    /// Average per-worker network wait: the wall-clock share of this
    /// operator's span spent blocked on the fabric.
    pub fn net_wait(&self) -> Duration {
        if self.wait_workers == 0 {
            Duration::ZERO
        } else {
            self.wait / self.wait_workers
        }
    }

    /// Wall time minus the average network wait — the compute share of
    /// the span.
    pub fn compute(&self) -> Duration {
        self.wall.saturating_sub(self.net_wait())
    }
}

/// One operator's spans across all nodes.
#[derive(Debug, Clone)]
pub struct OpProfile {
    /// Operator label (same text `--explain` prints).
    pub label: String,
    /// Depth in the plan tree (root = 0).
    pub depth: usize,
    /// Per-node spans, indexed by node id.
    pub nodes: Vec<OpNodeProfile>,
}

impl OpProfile {
    /// Rows consumed, summed across nodes.
    pub fn rows_in(&self) -> u64 {
        self.nodes.iter().map(|n| n.rows_in).sum()
    }

    /// Rows produced, summed across nodes.
    pub fn rows_out(&self) -> u64 {
        self.nodes.iter().map(|n| n.rows_out).sum()
    }

    /// Payload bytes shuffled, summed across nodes.
    pub fn bytes_sent(&self) -> u64 {
        self.nodes.iter().map(|n| n.bytes_sent).sum()
    }

    /// Slowest node's inclusive wall time.
    pub fn wall_max(&self) -> Duration {
        self.nodes.iter().map(|n| n.wall).max().unwrap_or_default()
    }

    /// Slowest node's average network wait.
    pub fn net_wait_max(&self) -> Duration {
        self.nodes
            .iter()
            .map(|n| n.net_wait())
            .max()
            .unwrap_or_default()
    }

    /// Whether this operator is an exchange (has a network side).
    pub fn is_exchange(&self) -> bool {
        self.label.starts_with("Exchange")
    }
}

/// One stage's merged profile.
#[derive(Debug, Clone)]
pub struct StageProfile {
    /// What the stage's output was used for (`result`, `params`,
    /// `materialize "name"`).
    pub role: String,
    /// The planner's cardinality estimate for the stage result (None for
    /// hand-written plans, which carry no estimates).
    pub estimated_rows: Option<f64>,
    /// The feedback-corrected cardinality that overrode the static
    /// estimate, when the stage was planned in feedback mode against a
    /// prior observation of the same plan.
    pub feedback_rows: Option<f64>,
    /// Stage start, measured from query submission (earliest node).
    pub start: Duration,
    /// Stage wall time (first node in → last node out).
    pub wall: Duration,
    /// Pre-order operator profiles (index 0 is the root).
    pub ops: Vec<OpProfile>,
}

impl StageProfile {
    /// Rows the stage produced. For `result` and `params` stages that is
    /// the coordinator's root output — SPMD execution runs the post-gather
    /// operators on every node, and a scalar aggregate emits its one row
    /// even over the empty input non-coordinators see, so summing across
    /// nodes would over-count. Materialize stages keep per-node output, so
    /// their actual cardinality is the sum.
    pub fn actual_rows(&self) -> u64 {
        let Some(root) = self.ops.first() else {
            return 0;
        };
        if self.role == "result" || self.role == "params" {
            root.nodes.first().map_or(0, |n| n.rows_out)
        } else {
            root.rows_out()
        }
    }

    /// Direct children of operator `idx`, by span-cell index.
    pub fn children_of(&self, idx: usize) -> Vec<usize> {
        let depth = self.ops[idx].depth;
        let mut out = Vec::new();
        for (j, op) in self.ops.iter().enumerate().skip(idx + 1) {
            if op.depth <= depth {
                break;
            }
            if op.depth == depth + 1 {
                out.push(j);
            }
        }
        out
    }
}

/// A query's complete profile: one [`StageProfile`] per executed stage,
/// in execution order. A cancelled query keeps the stages that finished
/// before the cancellation took effect.
#[derive(Debug, Clone)]
pub struct QueryProfile {
    /// Id the query ran under.
    pub query: QueryId,
    /// TPC-H query number (0 for ad-hoc queries).
    pub number: u32,
    /// Per-stage profiles, in execution order.
    pub stages: Vec<StageProfile>,
}

impl QueryProfile {
    /// Empty profile for a freshly admitted query.
    pub fn new(query: QueryId, number: u32) -> Self {
        Self {
            query,
            number,
            stages: Vec::new(),
        }
    }

    /// Total payload bytes shuffled across all stages.
    pub fn bytes_shuffled(&self) -> u64 {
        self.stages
            .iter()
            .flat_map(|s| &s.ops)
            .map(|o| o.bytes_sent())
            .sum()
    }

    /// The query's visible network wait: per stage, the slowest node's
    /// summed average wait across its exchanges; summed over stages.
    pub fn net_wait(&self) -> Duration {
        self.stages
            .iter()
            .map(|s| {
                let nodes = s.ops.first().map_or(0, |root| root.nodes.len());
                (0..nodes)
                    .map(|n| {
                        s.ops
                            .iter()
                            .map(|o| o.nodes[n].net_wait())
                            .sum::<Duration>()
                    })
                    .max()
                    .unwrap_or_default()
            })
            .sum()
    }

    /// Render the `EXPLAIN ANALYZE` tree: the plan annotated with actual
    /// rows, wall time, bytes shuffled, and the network-wait vs compute
    /// split, plus a per-node breakdown under each exchange.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let total = self.stages.len();
        for (i, stage) in self.stages.iter().enumerate() {
            let est = match (stage.estimated_rows, stage.feedback_rows) {
                (Some(e), Some(fb)) => format!("est ~{e:.0} rows · fb {fb:.0} rows, "),
                (Some(e), None) => format!("est ~{e:.0} rows, "),
                (None, _) => String::new(),
            };
            let _ = writeln!(
                out,
                "-- stage {}/{total}: {}  [{est}actual {} rows, wall {}]",
                i + 1,
                stage.role,
                stage.actual_rows(),
                fmt_dur(stage.wall),
            );
            for op in &stage.ops {
                for _ in 0..op.depth {
                    out.push_str("  ");
                }
                let _ = write!(
                    out,
                    "{}  [rows {} -> {}, wall {}",
                    op.label,
                    op.rows_in(),
                    op.rows_out(),
                    fmt_dur(op.wall_max()),
                );
                if op.is_exchange() {
                    let _ = write!(
                        out,
                        ", net wait {}, {} sent",
                        fmt_dur(op.net_wait_max()),
                        fmt_bytes(op.bytes_sent()),
                    );
                }
                out.push_str("]\n");
                if op.is_exchange() {
                    for n in &op.nodes {
                        for _ in 0..op.depth + 2 {
                            out.push_str("  ");
                        }
                        let _ = writeln!(
                            out,
                            "node{}: {} rows out, wall {}, wait {}, compute {}, \
                             {} msgs in",
                            n.node,
                            n.rows_out,
                            fmt_dur(n.wall),
                            fmt_dur(n.net_wait()),
                            fmt_dur(n.compute()),
                            n.batches,
                        );
                    }
                }
            }
        }
        out
    }
}

/// Format a duration as milliseconds with adaptive precision.
fn fmt_dur(d: Duration) -> String {
    let ms = d.as_secs_f64() * 1e3;
    if ms >= 100.0 {
        format!("{ms:.0} ms")
    } else if ms >= 1.0 {
        format!("{ms:.2} ms")
    } else {
        format!("{:.1} us", ms * 1e3)
    }
}

/// Format a byte count with binary units.
fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

fn trace_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialize `profiles` as Chrome trace-event JSON, loadable in
/// `chrome://tracing` or Perfetto: one process per query, one lane (thread)
/// per node, complete (`"ph": "X"`) events for stages and operators with
/// row counts and network waits in `args`. Timestamps are microseconds
/// since each query's submission.
pub fn chrome_trace(profiles: &[QueryProfile]) -> String {
    let mut events: Vec<String> = Vec::new();
    for p in profiles {
        let pid = p.query.0;
        let pname = if p.number > 0 {
            format!("Q{} ({})", p.number, p.query)
        } else {
            format!("{}", p.query)
        };
        events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            trace_escape(&pname)
        ));
        let nodes = p
            .stages
            .iter()
            .flat_map(|s| &s.ops)
            .map(|o| o.nodes.len())
            .max()
            .unwrap_or(0);
        for n in 0..nodes {
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{n},\
                 \"args\":{{\"name\":\"node {n}\"}}}}"
            ));
        }
        for (i, stage) in p.stages.iter().enumerate() {
            for op in &stage.ops {
                // The root operator's span per node doubles as the stage
                // lane header; deeper operators nest inside it visually.
                let cat = if op.depth == 0 { "stage" } else { "op" };
                let name = if op.depth == 0 {
                    format!("stage {}: {} | {}", i + 1, stage.role, op.label)
                } else {
                    op.label.clone()
                };
                for node in &op.nodes {
                    if node.wall.is_zero() && node.rows_out == 0 {
                        continue;
                    }
                    events.push(format!(
                        "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"X\",\
                         \"ts\":{:.3},\"dur\":{:.3},\"pid\":{pid},\"tid\":{},\
                         \"args\":{{\"rows_in\":{},\"rows_out\":{},\
                         \"bytes_sent\":{},\"net_wait_us\":{:.3}}}}}",
                        trace_escape(&name),
                        node.start.as_secs_f64() * 1e6,
                        node.wall.as_secs_f64() * 1e6,
                        node.node,
                        node.rows_in,
                        node.rows_out,
                        node.bytes_sent,
                        node.net_wait().as_secs_f64() * 1e6,
                    ));
                }
            }
        }
    }
    format!("{{\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::plan::{AggFunc, AggSpec};
    use hsqp_tpch::TpchTable;

    fn sample_plan() -> Plan {
        Plan::scan(TpchTable::Lineitem)
            .filter(col("l_quantity").lt(lit(10)))
            .repartition(&["l_orderkey"])
            .aggregate(&[], vec![AggSpec::new(AggFunc::Count, lit(1), "cnt")])
            .gather()
    }

    #[test]
    fn labels_match_node_count_and_preorder() {
        let plan = sample_plan();
        let labels = plan_labels(&plan);
        assert_eq!(labels.len(), plan_node_count(&plan));
        assert_eq!(labels[0].0, "Exchange Gather");
        assert_eq!(labels[0].1, 0);
        // Pre-order: each operator's depth is its tree depth.
        let depths: Vec<usize> = labels.iter().map(|(_, d)| *d).collect();
        assert_eq!(depths, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn join_children_index_arithmetic() {
        let plan = Plan::scan(TpchTable::Orders)
            .join(
                Plan::scan(TpchTable::Customer).filter(col("c_custkey").lt(lit(10))),
                &["o_custkey"],
                &["c_custkey"],
                crate::plan::JoinKind::Inner,
            )
            .gather();
        let labels = plan_labels(&plan);
        // gather(0) -> join(1) -> probe scan(2), build filter(3), build scan(4)
        assert_eq!(labels.len(), 5);
        assert!(labels[1].0.starts_with("HashJoin"));
        assert!(labels[2].0.starts_with("Scan orders"));
        assert!(labels[3].0.starts_with("Filter"));
        assert!(labels[4].0.starts_with("Scan customer"));
    }

    #[test]
    fn recorder_merges_spans() {
        let plan = sample_plan();
        let rec = StageRecorder::new(Instant::now(), 2, plan_node_count(&plan));
        rec.node(0).op_enter(0);
        rec.node(0).op_exit(0, 10, 5);
        rec.node(1).op_enter(0);
        rec.node(1).op_exit(0, 20, 7);
        rec.node(0).net_send(2, 1024, 2);
        rec.node(0).add_consume(2, Duration::from_micros(50), 3);
        let sp = rec.finish(&plan, None, "result".into(), Some(42.0), None);
        assert_eq!(sp.ops.len(), 5);
        // Result stages count the coordinator's root output only; the raw
        // per-operator accessors still sum across nodes.
        assert_eq!(sp.actual_rows(), 5);
        assert_eq!(sp.ops[0].rows_out(), 12);
        assert_eq!(sp.ops[0].rows_in(), 30);
        assert_eq!(sp.ops[2].bytes_sent(), 1024);
        assert_eq!(sp.ops[2].nodes[0].batches, 3);
        assert_eq!(sp.ops[2].nodes[0].wait_workers, 1);
        assert_eq!(sp.estimated_rows, Some(42.0));
        // Unvisited operators report zero spans, not garbage.
        assert_eq!(sp.ops[4].wall_max(), Duration::ZERO);
    }

    #[test]
    fn children_of_follows_depths() {
        let plan = Plan::scan(TpchTable::Orders)
            .join(
                Plan::scan(TpchTable::Customer),
                &["o_custkey"],
                &["c_custkey"],
                crate::plan::JoinKind::Inner,
            )
            .gather();
        let rec = StageRecorder::new(Instant::now(), 1, plan_node_count(&plan));
        let sp = rec.finish(&plan, None, "result".into(), None, None);
        assert_eq!(sp.children_of(0), vec![1]);
        assert_eq!(sp.children_of(1), vec![2, 3]);
        assert!(sp.children_of(2).is_empty());
    }

    #[test]
    fn render_and_trace_are_well_formed() {
        let plan = sample_plan();
        let rec = StageRecorder::new(Instant::now(), 1, plan_node_count(&plan));
        for i in 0..plan_node_count(&plan) {
            rec.node(0).op_enter(i);
            rec.node(0).op_exit(i, 1, 1);
        }
        let mut profile = QueryProfile::new(QueryId(7), 3);
        profile
            .stages
            .push(rec.finish(&plan, None, "result".into(), Some(9.0), Some(4.0)));
        let text = profile.render();
        assert!(text.contains("stage 1/1: result"));
        assert!(text.contains("est ~9 rows · fb 4 rows"));
        assert!(text.contains("Exchange Gather"));
        let trace = chrome_trace(std::slice::from_ref(&profile));
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"pid\":7"));
        // Balanced braces — cheap well-formedness check without a parser.
        let opens = trace.matches('{').count();
        let closes = trace.matches('}').count();
        assert_eq!(opens, closes);
    }
}
