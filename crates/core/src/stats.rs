//! The statistics catalog and runtime cardinality feedback.
//!
//! The planner's placement decisions (broadcast vs repartition,
//! pre-aggregation vs raw reshuffle, CTE materialization) are only as good
//! as their cardinality inputs. This module supplies them at three levels
//! of fidelity:
//!
//! 1. **Declared statistics** ([`StatsCatalog::declared_tpch`]) — row
//!    counts, NDVs, and min/max ranges derived from the TPC-H spec at a
//!    given scale factor. Used when no data is reachable (e.g. the
//!    coordinator of an out-of-process cluster, or `--explain` without a
//!    loaded database).
//! 2. **Sampled statistics** ([`TableStatistics::sample`]) — computed from
//!    the actually loaded relations at load time: exact row counts,
//!    per-column distinct-value estimates, null fractions, and numeric
//!    min/max, from a strided sample of up to [`SAMPLE_CAP`] rows.
//! 3. **Runtime feedback** ([`FeedbackCache`]) — *observed* stage-result
//!    cardinalities keyed by a fingerprint of the logical plan that
//!    produced them. Multi-stage queries re-plan later stages against the
//!    actuals of earlier ones, and repeated submissions of the same
//!    (sub)query are planned against what it really produced last time.
//!
//! The estimator functions ([`eq_selectivity`], [`range_selectivity`],
//! [`join_key_selectivity`], [`conjunction_selectivity`]) implement the
//! textbook System-R assumptions: uniform values within a column,
//! independence between predicates, and key containment across joins.

use std::collections::{BTreeMap, HashMap, HashSet};

use hsqp_storage::{decimal_to_f64, Column, DataType, Table};
use hsqp_tpch::TpchTable;
use parking_lot::Mutex;

use crate::expr::CmpOp;
use crate::logical::LogicalPlan;

/// How many rows [`TableStatistics::sample`] inspects per column at most
/// (strided over the whole relation, so head-sorted inputs do not bias the
/// min/max or the distinct-value count).
pub const SAMPLE_CAP: usize = 65_536;

/// How the planner sources its cardinality estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsMode {
    /// Legacy behavior: flat selectivity heuristics and the hard-coded
    /// broadcast/pre-aggregation rules. No catalog, no feedback.
    Off,
    /// Catalog-driven estimates (NDV, min/max, null fractions) feeding the
    /// cost model; no runtime feedback.
    Static,
    /// [`Static`](StatsMode::Static) plus runtime feedback: multi-stage
    /// queries re-plan later stages against observed cardinalities, and a
    /// per-session [`FeedbackCache`] corrects repeated-query estimates.
    Feedback,
}

impl StatsMode {
    /// Parse a CLI-style mode name (`off`, `static`, `feedback`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(Self::Off),
            "static" => Some(Self::Static),
            "feedback" => Some(Self::Feedback),
            _ => None,
        }
    }

    /// The CLI-style mode name.
    pub fn label(self) -> &'static str {
        match self {
            Self::Off => "off",
            Self::Static => "static",
            Self::Feedback => "feedback",
        }
    }
}

impl std::fmt::Display for StatsMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-column statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Estimated number of distinct non-NULL values.
    pub ndv: f64,
    /// Smallest numeric value (promoted: decimals as fractional units,
    /// dates as day numbers). `None` for string columns.
    pub min: Option<f64>,
    /// Largest numeric value (same promotion as `min`).
    pub max: Option<f64>,
    /// Fraction of rows that are NULL, in `[0, 1]`.
    pub null_fraction: f64,
}

impl ColumnStats {
    /// Statistics for a column with `ndv` distinct values and no NULLs.
    pub fn with_ndv(ndv: f64) -> Self {
        Self {
            ndv: ndv.max(1.0),
            min: None,
            max: None,
            null_fraction: 0.0,
        }
    }

    /// Add a numeric `[min, max]` range.
    pub fn with_range(mut self, min: f64, max: f64) -> Self {
        self.min = Some(min);
        self.max = Some(max);
        self
    }
}

/// Statistics for one relation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableStatistics {
    /// Exact (sampled) or declared row count.
    pub rows: f64,
    /// Per-column statistics, keyed by column name.
    pub columns: BTreeMap<String, ColumnStats>,
}

impl TableStatistics {
    /// Compute statistics from loaded data: exact row count plus per-column
    /// NDV / null-fraction / numeric min-max from a strided sample of up to
    /// [`SAMPLE_CAP`] rows.
    ///
    /// The distinct count uses a two-regime extrapolation: a sample that is
    /// mostly unique is assumed key-like (NDV scales with the table), while
    /// a sample dominated by duplicates is assumed to have saturated the
    /// value domain (NDV is the sampled distinct count).
    pub fn sample(table: &Table) -> Self {
        let rows = table.rows();
        let stride = rows.div_ceil(SAMPLE_CAP).max(1);
        let mut columns = BTreeMap::new();
        for (field, col) in table.schema().fields().iter().zip(table.columns()) {
            columns.insert(
                field.name.clone(),
                sample_column(col, field.dtype, rows, stride),
            );
        }
        Self {
            rows: rows as f64,
            columns,
        }
    }
}

/// Sample one column: every `stride`-th row up to `rows`.
fn sample_column(col: &Column, dtype: DataType, rows: usize, stride: usize) -> ColumnStats {
    let mut seen: HashSet<u64> = HashSet::new();
    let mut nulls = 0usize;
    let mut sampled = 0usize;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut idx = 0usize;
    while idx < rows {
        sampled += 1;
        if !col.is_valid(idx) {
            nulls += 1;
        } else {
            match col {
                Column::I64(v, _) => {
                    seen.insert(fnv1a(&v[idx].to_le_bytes()));
                    let promoted = if dtype == DataType::Decimal {
                        decimal_to_f64(v[idx])
                    } else {
                        v[idx] as f64
                    };
                    min = min.min(promoted);
                    max = max.max(promoted);
                }
                Column::F64(v, _) => {
                    seen.insert(fnv1a(&v[idx].to_bits().to_le_bytes()));
                    min = min.min(v[idx]);
                    max = max.max(v[idx]);
                }
                Column::Str(v, _) => {
                    seen.insert(fnv1a(v.get(idx).as_bytes()));
                }
            }
        }
        idx += stride;
    }
    let d = seen.len() as f64;
    let non_null = (sampled - nulls).max(1) as f64;
    let ndv = if sampled >= rows {
        d // full scan: exact
    } else if d * 2.0 >= non_null {
        // Mostly unique in the sample: key-like, scale with the table.
        (d * rows as f64 / sampled as f64).min(rows as f64)
    } else {
        // Duplicates dominate: the sample has (mostly) seen the domain.
        d
    };
    let numeric = min.is_finite() && max.is_finite();
    ColumnStats {
        ndv: ndv.max(1.0),
        min: numeric.then_some(min),
        max: numeric.then_some(max),
        null_fraction: if sampled == 0 {
            0.0
        } else {
            nulls as f64 / sampled as f64
        },
    }
}

/// The statistics catalog: per-table row counts and column statistics.
#[derive(Debug, Clone, Default)]
pub struct StatsCatalog {
    tables: BTreeMap<String, TableStatistics>,
}

impl StatsCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) the statistics of one relation.
    pub fn insert(&mut self, name: impl Into<String>, stats: TableStatistics) {
        self.tables.insert(name.into(), stats);
    }

    /// Sample a loaded TPC-H relation into the catalog.
    pub fn sample_table(&mut self, table: TpchTable, data: &Table) {
        self.insert(table.name(), TableStatistics::sample(data));
    }

    /// Statistics of `table`, if registered.
    pub fn table(&self, name: &str) -> Option<&TableStatistics> {
        self.tables.get(name)
    }

    /// Statistics of one column of `table`.
    pub fn column(&self, table: &str, column: &str) -> Option<&ColumnStats> {
        self.tables.get(table)?.columns.get(column)
    }

    /// Find a column's statistics without knowing its table. TPC-H column
    /// names carry their table prefix (`l_`, `o_`, …) and are globally
    /// unique, so this resolves column references that already passed
    /// through joins and projections — renamed columns simply miss and the
    /// caller falls back to its flat heuristic.
    pub fn column_anywhere(&self, column: &str) -> Option<&ColumnStats> {
        self.tables.values().find_map(|t| t.columns.get(column))
    }

    /// Declared statistics for a TPC-H database at scale factor `sf`,
    /// derived from the spec: exact row counts, key NDVs, value-domain
    /// sizes of the enumerated attributes, and date/money ranges. Used
    /// where no data can be sampled (remote coordinators, `--explain`).
    pub fn declared_tpch(sf: f64) -> Self {
        use hsqp_storage::date_from_ymd;
        let suppliers = (10_000.0 * sf).max(4.0);
        let customers = (150_000.0 * sf).max(10.0);
        let parts = (200_000.0 * sf).max(20.0);
        let orders = customers * 10.0;
        let lineitem = orders * 4.0;
        let date_lo = date_from_ymd(1992, 1, 1) as f64;
        let date_hi = date_from_ymd(1998, 12, 31) as f64;

        let mut c = Self::new();
        let mut add = |name: &str, rows: f64, cols: Vec<(&str, ColumnStats)>| {
            let mut t = TableStatistics {
                rows,
                columns: BTreeMap::new(),
            };
            for (col, stats) in cols {
                t.columns.insert(col.to_string(), stats);
            }
            c.tables.insert(name.to_string(), t);
        };

        let key = |n: f64| ColumnStats::with_ndv(n).with_range(0.0, n.max(1.0));
        add(
            "region",
            5.0,
            vec![
                ("r_regionkey", key(5.0)),
                ("r_name", ColumnStats::with_ndv(5.0)),
            ],
        );
        add(
            "nation",
            25.0,
            vec![
                ("n_nationkey", key(25.0)),
                ("n_regionkey", key(5.0)),
                ("n_name", ColumnStats::with_ndv(25.0)),
            ],
        );
        add(
            "supplier",
            suppliers,
            vec![
                ("s_suppkey", key(suppliers)),
                ("s_nationkey", key(25.0)),
                (
                    "s_acctbal",
                    ColumnStats::with_ndv(suppliers).with_range(-999.99, 9_999.99),
                ),
            ],
        );
        add(
            "customer",
            customers,
            vec![
                ("c_custkey", key(customers)),
                ("c_nationkey", key(25.0)),
                ("c_mktsegment", ColumnStats::with_ndv(5.0)),
                (
                    "c_acctbal",
                    ColumnStats::with_ndv(customers).with_range(-999.99, 9_999.99),
                ),
                ("c_phone", ColumnStats::with_ndv(customers)),
            ],
        );
        add(
            "part",
            parts,
            vec![
                ("p_partkey", key(parts)),
                ("p_brand", ColumnStats::with_ndv(25.0)),
                ("p_type", ColumnStats::with_ndv(150.0)),
                ("p_size", ColumnStats::with_ndv(50.0).with_range(1.0, 50.0)),
                ("p_container", ColumnStats::with_ndv(40.0)),
                (
                    "p_retailprice",
                    ColumnStats::with_ndv(parts).with_range(900.0, 2_100.0),
                ),
            ],
        );
        add(
            "partsupp",
            parts * 4.0,
            vec![
                ("ps_partkey", key(parts)),
                ("ps_suppkey", key(suppliers)),
                (
                    "ps_availqty",
                    ColumnStats::with_ndv(9_999.0).with_range(1.0, 9_999.0),
                ),
                (
                    "ps_supplycost",
                    ColumnStats::with_ndv(99_901.0).with_range(1.0, 1_000.0),
                ),
            ],
        );
        add(
            "orders",
            orders,
            vec![
                ("o_orderkey", key(orders)),
                // Two thirds of customers have placed at least one order.
                ("o_custkey", key(customers * 2.0 / 3.0)),
                (
                    "o_orderdate",
                    ColumnStats::with_ndv(2_406.0).with_range(date_lo, date_hi - 151.0),
                ),
                ("o_orderpriority", ColumnStats::with_ndv(5.0)),
                ("o_orderstatus", ColumnStats::with_ndv(3.0)),
                (
                    "o_totalprice",
                    ColumnStats::with_ndv(orders).with_range(850.0, 555_285.0),
                ),
            ],
        );
        add(
            "lineitem",
            lineitem,
            vec![
                ("l_orderkey", key(orders)),
                ("l_partkey", key(parts)),
                ("l_suppkey", key(suppliers)),
                (
                    "l_linenumber",
                    ColumnStats::with_ndv(7.0).with_range(1.0, 7.0),
                ),
                (
                    "l_quantity",
                    ColumnStats::with_ndv(50.0).with_range(1.0, 50.0),
                ),
                (
                    "l_extendedprice",
                    ColumnStats::with_ndv(lineitem).with_range(900.0, 104_950.0),
                ),
                (
                    "l_discount",
                    ColumnStats::with_ndv(11.0).with_range(0.0, 0.10),
                ),
                ("l_tax", ColumnStats::with_ndv(9.0).with_range(0.0, 0.08)),
                ("l_returnflag", ColumnStats::with_ndv(3.0)),
                ("l_linestatus", ColumnStats::with_ndv(2.0)),
                (
                    "l_shipdate",
                    ColumnStats::with_ndv(2_526.0).with_range(date_lo, date_hi),
                ),
                (
                    "l_commitdate",
                    ColumnStats::with_ndv(2_466.0).with_range(date_lo, date_hi),
                ),
                (
                    "l_receiptdate",
                    ColumnStats::with_ndv(2_554.0).with_range(date_lo, date_hi),
                ),
                ("l_shipinstruct", ColumnStats::with_ndv(4.0)),
                ("l_shipmode", ColumnStats::with_ndv(7.0)),
            ],
        );
        c
    }
}

// -- estimator math ---------------------------------------------------------

/// Selectivity of `column = literal` under the uniform-values assumption:
/// each distinct value captures an equal share of the non-NULL rows.
pub fn eq_selectivity(col: &ColumnStats) -> f64 {
    ((1.0 - col.null_fraction) / col.ndv.max(1.0)).clamp(1e-9, 1.0)
}

/// Selectivity of a range predicate `column <op> bound` from the column's
/// numeric `[min, max]` interval (uniform-spread assumption). Falls back to
/// `fallback` when the column has no numeric range.
pub fn range_selectivity(col: &ColumnStats, op: CmpOp, bound: f64, fallback: f64) -> f64 {
    let (Some(min), Some(max)) = (col.min, col.max) else {
        return fallback;
    };
    if max <= min {
        return fallback;
    }
    let width = max - min;
    let frac_below = ((bound - min) / width).clamp(0.0, 1.0);
    let not_null = 1.0 - col.null_fraction;
    let sel = match op {
        CmpOp::Lt | CmpOp::Le => frac_below,
        CmpOp::Gt | CmpOp::Ge => 1.0 - frac_below,
        CmpOp::Eq => return eq_selectivity(col),
        CmpOp::Ne => return (1.0 - eq_selectivity(col)).max(0.0),
    };
    (sel * not_null).clamp(1e-9, 1.0)
}

/// Combined selectivity of a conjunction under the independence
/// assumption, floored so deep predicate stacks never reach zero.
pub fn conjunction_selectivity(sels: impl IntoIterator<Item = f64>) -> f64 {
    sels.into_iter().product::<f64>().max(1e-6)
}

/// Per-pair join selectivity under the containment assumption: the smaller
/// key domain is contained in the larger, so matches occur at rate
/// `1 / max(ndv_left, ndv_right)` and `|L ⋈ R| = |L|·|R|·sel`.
pub fn join_key_selectivity(left: &ColumnStats, right: &ColumnStats) -> f64 {
    1.0 / left.ndv.max(right.ndv).max(1.0)
}

/// Estimated distinct-group count of a grouped aggregation: the capped
/// product of the group columns' NDVs (`None` for any column without
/// statistics — the caller falls back to its flat heuristic).
pub fn group_count(ndvs: &[Option<f64>], input_rows: f64) -> Option<f64> {
    let mut product = 1.0f64;
    for ndv in ndvs {
        product *= (*ndv)?;
        if product >= input_rows {
            // More combinations than rows: every row is its own group.
            return Some(input_rows.max(1.0));
        }
    }
    Some(product.clamp(1.0, input_rows.max(1.0)))
}

// -- runtime feedback -------------------------------------------------------

/// Session-scoped cache of observed stage cardinalities, keyed by
/// [`plan_fingerprint`]. Thread-safe; shared between the planner (lookups
/// while planning) and the execution driver (records as stages finish).
#[derive(Debug, Default)]
pub struct FeedbackCache {
    entries: Mutex<HashMap<u64, f64>>,
}

impl FeedbackCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the observed global row count of the plan fingerprinted as
    /// `fp`. The latest observation wins (predicates on parameters may
    /// shift cardinalities between runs; recent history is the best guess).
    pub fn record(&self, fp: u64, rows: f64) {
        self.entries.lock().insert(fp, rows.max(0.0));
    }

    /// The last observed cardinality of the plan fingerprinted as `fp`.
    pub fn lookup(&self, fp: u64) -> Option<f64> {
        self.entries.lock().get(&fp).copied()
    }

    /// Number of distinct plans with recorded observations.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether no observations have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Structural fingerprint of a logical plan, used as the [`FeedbackCache`]
/// key. Hashes the plan's canonical debug rendering (which covers every
/// operator, expression, and literal), so two structurally identical plans
/// collide on purpose — parameters appear as `Param(i)` markers, keeping
/// the fingerprint stable across executions that bind different values.
pub fn plan_fingerprint(plan: &LogicalPlan) -> u64 {
    struct FnvWriter(u64);
    impl std::fmt::Write for FnvWriter {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            for b in s.as_bytes() {
                self.0 ^= u64::from(*b);
                self.0 = self.0.wrapping_mul(0x100_0000_01b3);
            }
            Ok(())
        }
    }
    use std::fmt::Write as _;
    let mut w = FnvWriter(0xcbf2_9ce4_8422_2325);
    let _ = write!(w, "{plan:?}");
    w.0
}

/// FNV-1a over a byte slice (the sampler's value hash).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsqp_storage::{Field, Schema};

    fn int_table(values: Vec<i64>) -> Table {
        Table::new(
            Schema::new(vec![Field::new("v", DataType::Int64)]),
            vec![Column::I64(values, None)],
        )
    }

    #[test]
    fn equality_selectivity_follows_ndv() {
        let c = ColumnStats::with_ndv(100.0);
        assert!((eq_selectivity(&c) - 0.01).abs() < 1e-12);
        // NULLs shrink the matching fraction.
        let mut n = ColumnStats::with_ndv(100.0);
        n.null_fraction = 0.5;
        assert!((eq_selectivity(&n) - 0.005).abs() < 1e-12);
        // Degenerate NDV never divides by zero.
        assert!(eq_selectivity(&ColumnStats::with_ndv(0.0)) <= 1.0);
    }

    #[test]
    fn range_selectivity_interpolates_the_interval() {
        let c = ColumnStats::with_ndv(100.0).with_range(0.0, 100.0);
        let lt = range_selectivity(&c, CmpOp::Lt, 25.0, 0.3);
        assert!((lt - 0.25).abs() < 1e-12);
        let gt = range_selectivity(&c, CmpOp::Gt, 25.0, 0.3);
        assert!((gt - 0.75).abs() < 1e-12);
        // Out-of-range bounds clamp instead of going negative.
        assert!(range_selectivity(&c, CmpOp::Lt, -5.0, 0.3) <= 1e-9 + f64::EPSILON);
        assert!((range_selectivity(&c, CmpOp::Gt, -5.0, 0.3) - 1.0).abs() < 1e-12);
        // No numeric range: the flat fallback survives.
        let s = ColumnStats::with_ndv(10.0);
        assert_eq!(range_selectivity(&s, CmpOp::Lt, 1.0, 0.3), 0.3);
    }

    #[test]
    fn conjunction_multiplies_independently() {
        let sel = conjunction_selectivity([0.1, 0.5]);
        assert!((sel - 0.05).abs() < 1e-12);
        // Deep stacks are floored, not zeroed.
        assert!(conjunction_selectivity(vec![1e-3; 10]) >= 1e-6);
    }

    #[test]
    fn join_containment_uses_the_larger_domain() {
        let fk = ColumnStats::with_ndv(1_000.0); // foreign key
        let pk = ColumnStats::with_ndv(1_000.0); // primary key
                                                 // FK ⋈ PK at equal domains: every probe row finds one match, so
                                                 // |L⋈R| = |L|·|R|/ndv = |L| when |R| = ndv.
        let sel = join_key_selectivity(&fk, &pk);
        assert!((sel - 1e-3).abs() < 1e-15);
        let narrow = ColumnStats::with_ndv(10.0);
        assert!((join_key_selectivity(&narrow, &pk) - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn group_count_caps_at_input_rows() {
        assert_eq!(group_count(&[Some(4.0), Some(3.0)], 1e6), Some(12.0));
        assert_eq!(group_count(&[Some(1e4), Some(1e4)], 1e6), Some(1e6));
        assert_eq!(group_count(&[Some(4.0), None], 1e6), None);
        assert_eq!(group_count(&[], 5.0), Some(1.0));
    }

    #[test]
    fn sampling_measures_ndv_nulls_and_range() {
        // 1000 rows cycling through 10 values: low-cardinality regime.
        let t = int_table((0..1000).map(|i| i % 10).collect());
        let s = TableStatistics::sample(&t);
        assert_eq!(s.rows, 1000.0);
        let c = &s.columns["v"];
        assert_eq!(c.ndv, 10.0);
        assert_eq!(c.min, Some(0.0));
        assert_eq!(c.max, Some(9.0));
        assert_eq!(c.null_fraction, 0.0);

        // All-distinct: key-like regime, NDV tracks the row count.
        let t = int_table((0..1000).collect());
        let s = TableStatistics::sample(&t);
        assert_eq!(s.columns["v"].ndv, 1000.0);
    }

    #[test]
    fn declared_tpch_scales_with_sf() {
        let c = StatsCatalog::declared_tpch(0.01);
        assert_eq!(c.table("orders").unwrap().rows, 15_000.0);
        assert_eq!(c.column("lineitem", "l_orderkey").unwrap().ndv, 15_000.0);
        assert_eq!(c.column_anywhere("l_quantity").unwrap().ndv, 50.0);
        assert!(c.column_anywhere("no_such_column").is_none());
    }

    #[test]
    fn feedback_cache_round_trips_and_overwrites() {
        let plan = LogicalPlan::scan(TpchTable::Nation);
        let fp = plan_fingerprint(&plan);
        assert_eq!(fp, plan_fingerprint(&LogicalPlan::scan(TpchTable::Nation)));
        assert_ne!(fp, plan_fingerprint(&LogicalPlan::scan(TpchTable::Region)));

        let cache = FeedbackCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(fp), None);
        cache.record(fp, 42.0);
        assert_eq!(cache.lookup(fp), Some(42.0));
        cache.record(fp, 7.0);
        assert_eq!(cache.lookup(fp), Some(7.0), "latest observation wins");
        assert_eq!(cache.len(), 1);
    }
}
