//! NUMA topology description and access charging.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::cost::CostModel;

/// Identifier of a NUMA socket (CPU package) inside one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SocketId(pub u16);

/// Identifier of a hardware context (logical core) inside one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub u16);

/// Policy used when allocating network message buffers.
///
/// Figure 9 of the paper compares these three policies on a 4-socket server:
/// NUMA-aware allocation wins, interleaved loses 17 %, single-socket 52 %.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocPolicy {
    /// Allocate on the socket of the requesting worker (the paper's design).
    #[default]
    NumaAware,
    /// Round-robin across all sockets regardless of the requester.
    Interleaved,
    /// Everything on socket 0.
    SingleSocket,
}

/// Simulated NUMA topology of one server.
///
/// The default mirrors the paper's evaluation machines: two sockets with ten
/// physical cores each (twenty hardware contexts). [`Topology::quad`] mirrors
/// the 4-socket Sandy Bridge EP box used for Figure 9.
#[derive(Debug)]
pub struct Topology {
    sockets: u16,
    cores_per_socket: u16,
    /// Socket the (simulated) host channel adapter hangs off — NUIOA.
    nic_socket: SocketId,
    cost: CostModel,
    local_bytes: AtomicU64,
    remote_bytes: AtomicU64,
}

impl Clone for Topology {
    fn clone(&self) -> Self {
        Self {
            sockets: self.sockets,
            cores_per_socket: self.cores_per_socket,
            nic_socket: self.nic_socket,
            cost: self.cost,
            local_bytes: AtomicU64::new(self.local_bytes.load(Ordering::Relaxed)),
            remote_bytes: AtomicU64::new(self.remote_bytes.load(Ordering::Relaxed)),
        }
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::new(2, 10, CostModel::default())
    }
}

impl Topology {
    /// Create a topology with `sockets` sockets of `cores_per_socket` cores.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(sockets: u16, cores_per_socket: u16, cost: CostModel) -> Self {
        assert!(sockets > 0, "a server needs at least one socket");
        assert!(cores_per_socket > 0, "a socket needs at least one core");
        Self {
            sockets,
            cores_per_socket,
            nic_socket: SocketId(0),
            cost,
            local_bytes: AtomicU64::new(0),
            remote_bytes: AtomicU64::new(0),
        }
    }

    /// The 4-socket, 15-cores-per-socket server of Figure 9.
    pub fn quad() -> Self {
        Self::new(4, 15, CostModel::default())
    }

    /// A single-socket topology: every access is local; useful in tests.
    pub fn uniform(cores: u16) -> Self {
        Self::new(1, cores, CostModel::free())
    }

    /// Number of sockets.
    pub fn sockets(&self) -> u16 {
        self.sockets
    }

    /// Number of cores on each socket.
    pub fn cores_per_socket(&self) -> u16 {
        self.cores_per_socket
    }

    /// Total number of hardware contexts.
    pub fn total_cores(&self) -> u16 {
        self.sockets * self.cores_per_socket
    }

    /// Socket local to the network adapter (NUIOA, §2.1.1).
    pub fn nic_socket(&self) -> SocketId {
        self.nic_socket
    }

    /// Move the simulated HCA to a different socket.
    pub fn set_nic_socket(&mut self, socket: SocketId) {
        assert!(socket.0 < self.sockets, "socket out of range");
        self.nic_socket = socket;
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Socket that owns a given core (cores are laid out socket-major).
    pub fn socket_of(&self, core: CoreId) -> SocketId {
        assert!(core.0 < self.total_cores(), "core out of range");
        SocketId(core.0 / self.cores_per_socket)
    }

    /// All cores belonging to `socket`.
    pub fn cores_of(&self, socket: SocketId) -> impl Iterator<Item = CoreId> + '_ {
        assert!(socket.0 < self.sockets, "socket out of range");
        let base = socket.0 * self.cores_per_socket;
        (base..base + self.cores_per_socket).map(CoreId)
    }

    /// Pick the allocation socket for a worker on `worker_socket` under `policy`.
    ///
    /// `seq` is a monotonically increasing allocation counter used by the
    /// interleaved policy.
    pub fn alloc_socket(&self, policy: AllocPolicy, worker_socket: SocketId, seq: u64) -> SocketId {
        match policy {
            AllocPolicy::NumaAware => worker_socket,
            AllocPolicy::Interleaved => SocketId((seq % u64::from(self.sockets)) as u16),
            AllocPolicy::SingleSocket => SocketId(0),
        }
    }

    /// Charge the cost of `bytes` accessed from `from` touching memory on `at`.
    ///
    /// Local accesses are free (the real work the caller performs *is* the
    /// local cost); remote accesses busy-wait for the calibrated QPI penalty,
    /// making NUMA-oblivious placement measurably slower.
    pub fn charge_access(&self, from: SocketId, at: SocketId, bytes: usize) {
        if from == at {
            self.local_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        } else {
            self.remote_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
            let penalty = self.cost.remote_penalty(bytes);
            busy_wait(penalty);
        }
    }

    /// Bytes accessed NUMA-locally so far.
    pub fn local_bytes(&self) -> u64 {
        self.local_bytes.load(Ordering::Relaxed)
    }

    /// Bytes accessed NUMA-remotely so far.
    pub fn remote_bytes(&self) -> u64 {
        self.remote_bytes.load(Ordering::Relaxed)
    }

    /// Reset the access counters (between benchmark runs).
    pub fn reset_counters(&self) {
        self.local_bytes.store(0, Ordering::Relaxed);
        self.remote_bytes.store(0, Ordering::Relaxed);
    }
}

/// Spin for `d` without yielding the core — models memory-stall time, which
/// on real hardware occupies the core just like this spin does.
pub(crate) fn busy_wait(d: Duration) {
    if d.is_zero() {
        return;
    }
    let start = std::time::Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn socket_of_maps_socket_major() {
        let t = Topology::new(2, 10, CostModel::free());
        assert_eq!(t.socket_of(CoreId(0)), SocketId(0));
        assert_eq!(t.socket_of(CoreId(9)), SocketId(0));
        assert_eq!(t.socket_of(CoreId(10)), SocketId(1));
        assert_eq!(t.socket_of(CoreId(19)), SocketId(1));
    }

    #[test]
    #[should_panic(expected = "core out of range")]
    fn socket_of_rejects_out_of_range() {
        Topology::new(2, 10, CostModel::free()).socket_of(CoreId(20));
    }

    #[test]
    fn cores_of_enumerates_socket() {
        let t = Topology::new(2, 3, CostModel::free());
        let cores: Vec<_> = t.cores_of(SocketId(1)).collect();
        assert_eq!(cores, vec![CoreId(3), CoreId(4), CoreId(5)]);
    }

    #[test]
    fn alloc_policy_numa_aware_returns_worker_socket() {
        let t = Topology::quad();
        assert_eq!(
            t.alloc_socket(AllocPolicy::NumaAware, SocketId(3), 7),
            SocketId(3)
        );
    }

    #[test]
    fn alloc_policy_interleaved_round_robins() {
        let t = Topology::quad();
        let picks: Vec<_> = (0..8)
            .map(|i| t.alloc_socket(AllocPolicy::Interleaved, SocketId(0), i).0)
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn alloc_policy_single_socket_pins_to_zero() {
        let t = Topology::quad();
        assert_eq!(
            t.alloc_socket(AllocPolicy::SingleSocket, SocketId(2), 42),
            SocketId(0)
        );
    }

    #[test]
    fn charge_access_counts_local_and_remote() {
        let t = Topology::new(2, 2, CostModel::free());
        t.charge_access(SocketId(0), SocketId(0), 100);
        t.charge_access(SocketId(0), SocketId(1), 50);
        assert_eq!(t.local_bytes(), 100);
        assert_eq!(t.remote_bytes(), 50);
        t.reset_counters();
        assert_eq!(t.local_bytes(), 0);
        assert_eq!(t.remote_bytes(), 0);
    }

    #[test]
    fn remote_access_takes_measurable_time() {
        let cost = CostModel::new(2.0); // 2ns per remote byte
        let t = Topology::new(2, 2, cost);
        let start = std::time::Instant::now();
        t.charge_access(SocketId(0), SocketId(1), 1_000_000);
        // 1 MB * 2 ns = 2 ms of simulated QPI stall.
        assert!(start.elapsed() >= Duration::from_millis(1));
    }

    #[test]
    fn default_topology_matches_paper_servers() {
        let t = Topology::default();
        assert_eq!(t.sockets(), 2);
        assert_eq!(t.total_cores(), 20);
        assert_eq!(t.nic_socket(), SocketId(0));
    }
}
