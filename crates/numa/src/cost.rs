//! Calibrated remote-access penalties.

use std::time::Duration;

/// Per-byte penalty for NUMA-remote memory traffic.
///
/// On the paper's 2-socket Xeon E5-2660 v2 machines a QPI hop adds roughly
/// 0.5–1 ns/byte of extra stall compared to local DRAM under streaming
/// access. We default to 0.6 ns/byte, which reproduces the magnitude of the
/// Figure 9 differences (17 % interleaved, 52 % single-socket) at the scale
/// factors this reproduction runs at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    remote_ns_per_byte: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::new(0.6)
    }
}

impl CostModel {
    /// Create a cost model charging `remote_ns_per_byte` ns for every byte of
    /// remote traffic.
    ///
    /// # Panics
    /// Panics on negative or non-finite penalties.
    pub fn new(remote_ns_per_byte: f64) -> Self {
        assert!(
            remote_ns_per_byte.is_finite() && remote_ns_per_byte >= 0.0,
            "penalty must be a non-negative finite number"
        );
        Self { remote_ns_per_byte }
    }

    /// A cost model that charges nothing; turns NUMA simulation off.
    pub fn free() -> Self {
        Self::new(0.0)
    }

    /// Penalty in ns/byte.
    pub fn remote_ns_per_byte(&self) -> f64 {
        self.remote_ns_per_byte
    }

    /// Stall duration for a remote access of `bytes`.
    pub fn remote_penalty(&self, bytes: usize) -> Duration {
        Duration::from_nanos((bytes as f64 * self.remote_ns_per_byte) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_model_charges_nothing() {
        assert_eq!(CostModel::free().remote_penalty(1 << 20), Duration::ZERO);
    }

    #[test]
    fn penalty_scales_linearly() {
        let m = CostModel::new(2.0);
        assert_eq!(m.remote_penalty(500), Duration::from_nanos(1000));
        assert_eq!(m.remote_penalty(1000), Duration::from_nanos(2000));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_penalty_rejected() {
        CostModel::new(-1.0);
    }

    #[test]
    fn default_is_calibrated() {
        assert!(CostModel::default().remote_ns_per_byte() > 0.0);
    }
}
