//! Per-socket buffer arenas.
//!
//! RDMA message buffers must be pinned and registered with the HCA, which is
//! expensive (§2.2.2), so the paper reuses buffers through a message pool.
//! The pool must additionally be NUMA-aware: a worker should always receive
//! a buffer that lives on its own socket (§3.2.2). [`SocketArena`] provides
//! exactly that: one free list per socket, with buffers that return to their
//! home free list on drop.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::topology::SocketId;

#[derive(Debug, Default)]
struct Shelf {
    free: Vec<Vec<u8>>,
}

#[derive(Debug)]
struct ArenaInner {
    shelves: Vec<Mutex<Shelf>>,
    buffer_capacity: usize,
}

/// A NUMA-aware pool of fixed-capacity byte buffers.
///
/// Cloning is cheap; clones share the same free lists.
#[derive(Debug, Clone)]
pub struct SocketArena {
    inner: Arc<ArenaInner>,
}

impl SocketArena {
    /// Create an arena spanning `sockets` sockets handing out buffers of
    /// `buffer_capacity` bytes.
    ///
    /// # Panics
    /// Panics if `sockets` is zero or `buffer_capacity` is zero.
    pub fn new(sockets: u16, buffer_capacity: usize) -> Self {
        assert!(sockets > 0, "need at least one socket");
        assert!(buffer_capacity > 0, "buffers must have non-zero capacity");
        let shelves = (0..sockets).map(|_| Mutex::new(Shelf::default())).collect();
        Self {
            inner: Arc::new(ArenaInner {
                shelves,
                buffer_capacity,
            }),
        }
    }

    /// Capacity of every buffer handed out by this arena.
    pub fn buffer_capacity(&self) -> usize {
        self.inner.buffer_capacity
    }

    /// Number of sockets the arena spans.
    pub fn sockets(&self) -> u16 {
        self.inner.shelves.len() as u16
    }

    /// Number of currently pooled (idle) buffers on `socket`.
    pub fn idle_on(&self, socket: SocketId) -> usize {
        self.inner.shelves[socket.0 as usize].lock().free.len()
    }

    /// Take a buffer homed on `socket`, reusing a pooled one when available.
    ///
    /// Reuse corresponds to skipping memory-region registration in the
    /// paper; a fresh allocation corresponds to paying it.
    pub fn take(&self, socket: SocketId) -> PooledBuffer {
        let shelf = &self.inner.shelves[socket.0 as usize];
        let (data, reused) = match shelf.lock().free.pop() {
            Some(mut buf) => {
                buf.clear();
                (buf, true)
            }
            None => (Vec::with_capacity(self.inner.buffer_capacity), false),
        };
        PooledBuffer {
            data,
            socket,
            reused,
            home: Arc::downgrade(&self.inner),
        }
    }
}

/// A byte buffer homed on a NUMA socket; returns to its arena on drop.
#[derive(Debug)]
pub struct PooledBuffer {
    data: Vec<u8>,
    socket: SocketId,
    reused: bool,
    home: std::sync::Weak<ArenaInner>,
}

impl PooledBuffer {
    /// Socket this buffer's memory lives on.
    pub fn socket(&self) -> SocketId {
        self.socket
    }

    /// Whether this buffer came from the pool (`true`) or was freshly
    /// allocated (`false`, i.e. had to pay "registration").
    pub fn was_reused(&self) -> bool {
        self.reused
    }

    /// Read access to the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Mutable access to the underlying vector.
    pub fn as_mut_vec(&mut self) -> &mut Vec<u8> {
        &mut self.data
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Detach the bytes from the pool, consuming the buffer. The memory will
    /// not be returned to the arena.
    pub fn into_vec(mut self) -> Vec<u8> {
        std::mem::take(&mut self.data)
    }
}

impl Drop for PooledBuffer {
    fn drop(&mut self) {
        if self.data.capacity() == 0 {
            return; // detached via into_vec
        }
        if let Some(home) = self.home.upgrade() {
            let buf = std::mem::take(&mut self.data);
            home.shelves[self.socket.0 as usize].lock().free.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_then_reused() {
        let arena = SocketArena::new(2, 64);
        let b = arena.take(SocketId(1));
        assert!(!b.was_reused());
        assert_eq!(b.socket(), SocketId(1));
        drop(b);
        assert_eq!(arena.idle_on(SocketId(1)), 1);
        let b2 = arena.take(SocketId(1));
        assert!(b2.was_reused());
        assert_eq!(arena.idle_on(SocketId(1)), 0);
    }

    #[test]
    fn buffers_return_to_their_own_socket() {
        let arena = SocketArena::new(2, 64);
        let b0 = arena.take(SocketId(0));
        let b1 = arena.take(SocketId(1));
        drop(b0);
        drop(b1);
        assert_eq!(arena.idle_on(SocketId(0)), 1);
        assert_eq!(arena.idle_on(SocketId(1)), 1);
    }

    #[test]
    fn reused_buffer_is_cleared() {
        let arena = SocketArena::new(1, 16);
        let mut b = arena.take(SocketId(0));
        b.as_mut_vec().extend_from_slice(b"hello");
        drop(b);
        let b = arena.take(SocketId(0));
        assert!(b.is_empty());
    }

    #[test]
    fn into_vec_detaches_from_pool() {
        let arena = SocketArena::new(1, 16);
        let mut b = arena.take(SocketId(0));
        b.as_mut_vec().push(7);
        let v = b.into_vec();
        assert_eq!(v, vec![7]);
        assert_eq!(arena.idle_on(SocketId(0)), 0);
    }

    #[test]
    fn drop_after_arena_gone_is_safe() {
        let arena = SocketArena::new(1, 16);
        let b = arena.take(SocketId(0));
        drop(arena);
        drop(b); // must not panic
    }

    #[test]
    fn clones_share_free_lists() {
        let a = SocketArena::new(1, 8);
        let b = a.clone();
        drop(a.take(SocketId(0)));
        assert_eq!(b.idle_on(SocketId(0)), 1);
    }
}
