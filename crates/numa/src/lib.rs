//! # hsqp-numa — simulated NUMA topology and cost model
//!
//! Modern many-core servers are NUMA machines: every CPU socket owns a local
//! memory controller and reaches remote memory over QPI links that are both
//! slower and higher-latency than local accesses (§2.1.1, §3.2.2 of the
//! paper). The paper's engine exposes NUMA to the database so that message
//! buffers are allocated NUMA-locally and the network thread is pinned to the
//! NUIOA-local socket.
//!
//! This crate models that behaviour in software. A [`Topology`] describes
//! sockets and cores; a [`CostModel`] charges a calibrated busy-wait penalty
//! for remote accesses so that NUMA-oblivious placement *actually runs
//! slower*, reproducing Figure 9 of the paper. Buffers are tagged with a
//! [`SocketId`]; [`Topology::charge_access`] is called by the engine whenever
//! a worker touches a buffer, and spins for the configured per-byte penalty
//! when the buffer is remote.

pub mod arena;
pub mod cost;
pub mod topology;

pub use arena::{PooledBuffer, SocketArena};
pub use cost::CostModel;
pub use topology::{AllocPolicy, CoreId, SocketId, Topology};
