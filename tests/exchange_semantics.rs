//! Integration tests of the exchange operator semantics across the real
//! multiplexer path: broadcast retain behaviour, gather, classic-mode
//! per-unit broadcast cost, message-pool accounting, and shuffle metrics.

use hsqp::engine::cluster::{Cluster, ClusterConfig, EngineKind, Transport};
use hsqp::engine::expr::{col, lit};
use hsqp::engine::plan::{AggSpec, JoinKind, Plan, SortKey};
use hsqp::engine::AggFunc;
use hsqp::tpch::{TpchDb, TpchTable};

fn quick_cluster(nodes: u16) -> Cluster {
    let c = Cluster::start(ClusterConfig::quick(nodes)).unwrap();
    c.load_tpch(0.002).unwrap();
    c
}

#[test]
fn gather_collects_everything_at_the_coordinator() {
    let c = quick_cluster(3);
    let total_rows = {
        // Count lineitem rows per node via a local aggregate + gather.
        let plan = Plan::scan_cols(TpchTable::Lineitem, &["l_orderkey"])
            .aggregate(&[], vec![AggSpec::new(AggFunc::Count, lit(1), "cnt")])
            .gather();
        let r = c.run_plan(&plan).unwrap();
        // One partial row per node arrives at node 0.
        assert_eq!(r.row_count(), 3);
        (0..3).map(|i| r.table.value(i, 0).as_i64()).sum::<i64>()
    };
    // Cross-check against a full gather of the raw rows.
    let gathered = c
        .run_plan(&Plan::scan_cols(TpchTable::Lineitem, &["l_orderkey"]).gather())
        .unwrap();
    assert_eq!(gathered.row_count() as i64, total_rows);
    c.shutdown();
}

#[test]
fn broadcast_replicates_build_side_exactly_once_per_node() {
    let c = quick_cluster(3);
    // Join against a broadcast nation table: every lineitem-side row of the
    // probe must match exactly one build row, so result cardinality equals
    // the probe cardinality (suppkey → supplier → nation is total).
    let probe = Plan::scan_cols(TpchTable::Supplier, &["s_suppkey", "s_nationkey"]);
    let build = Plan::scan_cols(TpchTable::Nation, &["n_nationkey", "n_name"]).broadcast();
    let plan = probe
        .join(build, &["s_nationkey"], &["n_nationkey"], JoinKind::Inner)
        .gather();
    let suppliers = c
        .run_plan(&Plan::scan_cols(TpchTable::Supplier, &["s_suppkey"]).gather())
        .unwrap()
        .row_count();
    let joined = c.run_plan(&plan).unwrap();
    assert_eq!(joined.row_count(), suppliers, "broadcast duplicated rows");
    c.shutdown();
}

#[test]
fn classic_broadcast_ships_one_copy_per_unit() {
    let db = TpchDb::generate(0.002);
    let plan = Plan::scan_cols(TpchTable::Orders, &["o_orderkey", "o_custkey"])
        .join(
            Plan::scan_cols(TpchTable::Nation, &["n_nationkey"]).broadcast(),
            &["o_custkey"],
            &["n_nationkey"],
            JoinKind::LeftSemi,
        )
        .aggregate(&[], vec![AggSpec::new(AggFunc::Count, lit(1), "cnt")])
        .gather();

    let bytes = |engine: EngineKind, workers: u16| {
        let cfg = ClusterConfig {
            engine,
            workers_per_node: workers,
            transport: Transport::rdma_unscheduled(),
            ..ClusterConfig::quick(2)
        };
        let c = Cluster::start(cfg).unwrap();
        c.load_tpch_db(db.clone()).unwrap();
        let r = c.run_plan(&plan).unwrap();
        c.shutdown();
        (r.bytes_shuffled, r.table.value(0, 0).as_i64())
    };
    let (hybrid_bytes, hybrid_cnt) = bytes(EngineKind::Hybrid, 2);
    let (classic_bytes, classic_cnt) = bytes(EngineKind::Classic, 2);
    assert_eq!(hybrid_cnt, classic_cnt, "results must agree");
    // Classic sends t copies of every broadcast message per remote node.
    assert!(
        classic_bytes > hybrid_bytes + hybrid_bytes / 2,
        "classic broadcast should cost ~t x hybrid: {classic_bytes} vs {hybrid_bytes}"
    );
}

#[test]
fn message_pool_reuses_registrations_across_queries() {
    let c = quick_cluster(2);
    let plan = Plan::scan_cols(TpchTable::Lineitem, &["l_orderkey"])
        .repartition(&["l_orderkey"])
        .aggregate(&[], vec![AggSpec::new(AggFunc::Count, lit(1), "cnt")])
        .gather();
    c.run_plan(&plan).unwrap();
    let after_first = c.node_ctx(0).pool.registrations();
    assert!(after_first > 0, "first query must register buffers");
    for _ in 0..3 {
        c.run_plan(&plan).unwrap();
    }
    let after_more = c.node_ctx(0).pool.registrations();
    let reuses = c.node_ctx(0).pool.reuses();
    assert!(
        after_more <= after_first + 2,
        "later queries should reuse the pool ({after_first} -> {after_more})"
    );
    assert!(reuses > 0, "no reuse happened");
    c.shutdown();
}

#[test]
fn shuffle_metrics_reflect_placement() {
    // Partitioned placement makes the orders/lineitem orderkey join local;
    // chunked placement must shuffle more.
    let db = TpchDb::generate(0.005);
    let plan = Plan::scan_cols(TpchTable::Lineitem, &["l_orderkey", "l_quantity"])
        .repartition(&["l_orderkey"])
        .join(
            Plan::scan_cols(TpchTable::Orders, &["o_orderkey"]).repartition(&["o_orderkey"]),
            &["l_orderkey"],
            &["o_orderkey"],
            JoinKind::LeftSemi,
        )
        .aggregate(&[], vec![AggSpec::new(AggFunc::Count, lit(1), "cnt")])
        .gather();
    let shuffled = |placement| {
        let cfg = ClusterConfig {
            placement,
            ..ClusterConfig::quick(3)
        };
        let c = Cluster::start(cfg).unwrap();
        c.load_tpch_db(db.clone()).unwrap();
        let r = c.run_plan(&plan).unwrap();
        c.shutdown();
        r.bytes_shuffled
    };
    use hsqp::storage::placement::Placement;
    let chunked = shuffled(Placement::Chunked);
    let partitioned = shuffled(Placement::Partitioned);
    assert!(
        partitioned < chunked / 2,
        "partitioned placement should shuffle far less: {partitioned} vs {chunked}"
    );
}

#[test]
fn repeated_queries_are_stable() {
    // Exchange ids must not collide across runs; results stay identical.
    let c = quick_cluster(2);
    let plan = Plan::scan_cols(TpchTable::Orders, &["o_custkey", "o_totalprice"])
        .repartition(&["o_custkey"])
        .aggregate(
            &["o_custkey"],
            vec![AggSpec::new(AggFunc::Sum, col("o_totalprice"), "spent")],
        )
        .gather()
        .sort(vec![SortKey::desc("spent")], Some(5));
    let first = c.run_plan(&plan).unwrap().table;
    for _ in 0..4 {
        let again = c.run_plan(&plan).unwrap().table;
        assert_eq!(again.rows(), first.rows());
        for r in 0..first.rows() {
            assert_eq!(again.value(r, 0), first.value(r, 0));
        }
    }
    c.shutdown();
}

#[test]
fn single_node_cluster_never_touches_the_fabric() {
    let c = quick_cluster(1);
    let plan = Plan::scan_cols(TpchTable::Lineitem, &["l_orderkey"])
        .repartition(&["l_orderkey"])
        .aggregate(&[], vec![AggSpec::new(AggFunc::Count, lit(1), "cnt")])
        .gather();
    let r = c.run_plan(&plan).unwrap();
    assert_eq!(r.bytes_shuffled, 0);
    assert_eq!(r.messages_sent, 0);
    c.shutdown();
}

#[test]
fn polling_completion_mode_works_end_to_end() {
    use hsqp::net::CompletionMode;
    let cfg = ClusterConfig {
        transport: Transport::Rdma {
            scheduling: true,
            completion: CompletionMode::Polling,
        },
        ..ClusterConfig::quick(2)
    };
    let c = Cluster::start(cfg).unwrap();
    c.load_tpch(0.001).unwrap();
    let q = hsqp::engine::queries::tpch_query(6).unwrap();
    let r = c.run(&q).unwrap();
    assert_eq!(r.row_count(), 1);
    c.shutdown();
}
