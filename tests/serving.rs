//! Integration tests for the multi-tenant serving layer: weighted-fair
//! scheduling under saturation (no starvation, service in weight
//! proportion), morsel-bounded cancellation latency, deadline /
//! `wait_timeout` no-wedge regressions, fast admission-cap rejection, and
//! an open-loop CLI smoke over both the in-process and out-of-process
//! backends.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use hsqp::engine::cluster::{Cluster, ClusterConfig, QueryHandle};
use hsqp::engine::error::EngineError;
use hsqp::engine::queries::tpch_query;
use hsqp::engine::serve::{SubmitOptions, TenantConfig};

/// Start a 2-node cluster with a single dispatcher slot and the given
/// tenants, loaded at `sf`.
fn serving_cluster(sf: f64, tenants: &[(&str, TenantConfig)]) -> Cluster {
    let cluster = Cluster::start(ClusterConfig {
        max_concurrent: 1,
        tenants: tenants
            .iter()
            .map(|(n, c)| (n.to_string(), c.clone()))
            .collect(),
        ..ClusterConfig::quick(2)
    })
    .expect("start cluster");
    cluster.load_tpch(sf).expect("load TPC-H");
    cluster
}

/// A backlogged 4:1 tenant pair must be *served* in weight proportion:
/// plug the single dispatcher slot with a long query, enqueue an
/// interleaved gold/silver backlog behind it, then reconstruct the pickup
/// order from each query's measured `queue_wait` — any early window of
/// picks must be dominated by gold roughly 4:1, and silver must not
/// starve.
#[test]
fn weighted_fair_scheduling_serves_in_weight_proportion() {
    let cluster = serving_cluster(
        0.01,
        &[
            ("gold", TenantConfig::weighted(4)),
            ("silver", TenantConfig::weighted(1)),
        ],
    );
    let plug = tpch_query(9).expect("build Q9");
    let fast = tpch_query(6).expect("build Q6");
    let serial_rows = cluster.run(&fast).expect("serial Q6").row_count();

    // Occupy the only dispatcher slot, then enqueue the backlog while it
    // holds the slot — every backlog query starts queued, so the WDRR
    // schedule alone decides pickup order.
    let plug_handle = cluster
        .submit_with(&plug, &SubmitOptions::tenant("gold"))
        .expect("submit plug");
    let base = Instant::now();
    let backlog: Vec<(&str, Instant, QueryHandle)> = (0..40)
        .map(|i| {
            let tenant = if i % 2 == 0 { "gold" } else { "silver" };
            let submitted = Instant::now();
            let handle = cluster
                .submit_with(&fast, &SubmitOptions::tenant(tenant))
                .expect("submit backlog query");
            (tenant, submitted, handle)
        })
        .collect();

    plug_handle.wait().expect("plug completes");
    let mut picks: Vec<(Duration, &str)> = Vec::new();
    for (tenant, submitted, handle) in backlog {
        let result = handle.wait().expect("backlog query completes");
        assert_eq!(result.row_count(), serial_rows, "row drift under load");
        assert!(
            result.queue_wait > Duration::ZERO,
            "backlog query was picked up before the plug released the slot"
        );
        // Pickup instant = submission instant + measured queue wait.
        picks.push((submitted + result.queue_wait - base, tenant));
    }
    picks.sort();

    let gold_early = picks.iter().take(25).filter(|(_, t)| *t == "gold").count();
    let silver_early = 25 - gold_early;
    // Exact DRR gives 20 gold in the first 25 picks here; leave slack for
    // cursor position. 4:1 weights must clearly beat fair-share (12.5).
    assert!(
        (17..=22).contains(&gold_early),
        "expected ~4:1 gold-dominated pickup order, got {gold_early} gold \
         in the first 25 picks"
    );
    assert!(
        silver_early >= 3,
        "silver starved: only {silver_early} of the first 25 picks"
    );

    // Per-tenant rollups saw every submission complete.
    let metrics = cluster.tenant_metrics();
    let gold = metrics
        .iter()
        .find(|m| m.tenant.as_str() == "gold")
        .expect("gold metrics");
    let silver = metrics
        .iter()
        .find(|m| m.tenant.as_str() == "silver")
        .expect("silver metrics");
    assert_eq!(gold.submitted, 21);
    assert_eq!(gold.completed, 21);
    assert_eq!(silver.submitted, 20);
    assert_eq!(silver.completed, 20);
    assert_eq!(gold.failed + gold.cancelled + gold.rejected, 0);
    assert_eq!(silver.failed + silver.cancelled + silver.rejected, 0);
    cluster.shutdown();
}

/// `cancel()` must take effect at morsel granularity: cancelling a
/// long-running query mid-flight resolves its handle far faster than
/// letting the query finish would, and the cluster stays healthy.
#[test]
fn cancellation_latency_is_morsel_bounded() {
    let cluster = serving_cluster(0.02, &[]);
    let heavy = tpch_query(9).expect("build Q9");
    let wall = {
        let started = Instant::now();
        cluster.run(&heavy).expect("baseline Q9");
        started.elapsed()
    };

    let handle = cluster.submit(&heavy).expect("submit Q9");
    std::thread::sleep(wall / 4);
    let cancelled_at = Instant::now();
    handle.cancel();
    let outcome = handle.wait();
    let latency = cancelled_at.elapsed();
    assert!(
        matches!(outcome, Err(EngineError::Cancelled)),
        "expected Cancelled, got {outcome:?}"
    );
    // A morsel is thousands of rows (microseconds of work) and exchange
    // waits poll every few ms; the bound below is generous slack over
    // that, and far below the query's remaining runtime at saturation.
    let bound = (wall / 2).max(Duration::from_millis(150));
    assert!(
        latency < bound,
        "cancel latency {latency:?} not morsel-bounded (query wall {wall:?})"
    );

    // Nothing wedged: the same query still runs to completion.
    cluster.run(&heavy).expect("Q9 after cancellation");
    cluster.shutdown();
}

/// Submit-time deadlines and `wait_timeout` must never wedge the engine:
/// a deadline that fires mid-query resolves the handle with the typed
/// error, a timed-out wait leaves the handle usable, and follow-up
/// queries run normally.
#[test]
fn deadline_and_wait_timeout_do_not_wedge() {
    let cluster = serving_cluster(0.01, &[]);
    let heavy = tpch_query(9).expect("build Q9");
    let fast = tpch_query(6).expect("build Q6");

    // Deadline far shorter than the query: typed DeadlineExceeded.
    let handle = cluster
        .submit_with(
            &heavy,
            &SubmitOptions::tenant("t").with_deadline(Duration::from_millis(2)),
        )
        .expect("submit with deadline");
    let outcome = handle.wait();
    assert!(
        matches!(outcome, Err(EngineError::DeadlineExceeded)),
        "expected DeadlineExceeded, got {outcome:?}"
    );

    // wait_timeout on an in-flight query returns None without consuming
    // the handle; cancel + wait still resolves it.
    let handle = cluster.submit(&heavy).expect("submit Q9");
    if handle.wait_timeout(Duration::from_millis(1)).is_none() {
        handle.cancel();
        let outcome = handle.wait();
        assert!(
            matches!(outcome, Err(EngineError::Cancelled)),
            "expected Cancelled after timeout+cancel, got {outcome:?}"
        );
    }

    // wait_timeout with ample budget yields the result.
    let handle = cluster.submit(&fast).expect("submit Q6");
    let result = handle
        .wait_timeout(Duration::from_secs(60))
        .expect("fast query finishes well within a minute")
        .expect("fast query succeeds");
    assert!(result.row_count() > 0);

    // Engine healthy after all of the above.
    cluster.run(&fast).expect("follow-up query");
    cluster.shutdown();
}

/// Over-cap submissions are rejected fast with the typed admission error
/// while under-cap submissions queue and complete; the cap applies per
/// tenant, not globally.
#[test]
fn admission_cap_rejects_over_queue_submissions() {
    let cluster = serving_cluster(
        0.01,
        &[
            ("capped", {
                TenantConfig {
                    weight: 1,
                    max_queued: Some(1),
                    max_concurrent: Some(1),
                }
            }),
            ("open", TenantConfig::weighted(1)),
        ],
    );
    let heavy = tpch_query(9).expect("build Q9");
    let fast = tpch_query(6).expect("build Q6");

    // Plug the single dispatcher slot so subsequent submissions queue.
    let plug = cluster
        .submit_with(&heavy, &SubmitOptions::tenant("open"))
        .expect("submit plug");
    let queued = cluster
        .submit_with(&fast, &SubmitOptions::tenant("capped"))
        .expect("first capped submission queues");
    match cluster.submit_with(&fast, &SubmitOptions::tenant("capped")) {
        Err(EngineError::Admission(msg)) => {
            assert!(msg.contains("max_queued"), "unexpected message: {msg}")
        }
        Err(other) => panic!("expected Admission rejection, got {other:?}"),
        Ok(_) => panic!("over-cap submission was admitted"),
    }
    // Another tenant is unaffected by capped's limits.
    let open_ok = cluster
        .submit_with(&fast, &SubmitOptions::tenant("open"))
        .expect("open tenant submission queues");

    plug.wait().expect("plug completes");
    queued.wait().expect("queued capped query completes");
    open_ok.wait().expect("open query completes");

    // With the queue drained the capped tenant admits again.
    cluster
        .submit_with(&fast, &SubmitOptions::tenant("capped"))
        .expect("capped admits after drain")
        .wait()
        .expect("and completes");

    let metrics = cluster.tenant_metrics();
    let capped = metrics
        .iter()
        .find(|m| m.tenant.as_str() == "capped")
        .expect("capped metrics");
    assert_eq!(capped.rejected, 1);
    assert_eq!(capped.completed, 2);
    cluster.shutdown();
}

// ---------------------------------------------------------------------------
// Open-loop CLI smoke over both backends
// ---------------------------------------------------------------------------

/// A spawned `hsqp-node` child process, killed on drop.
struct NodeProc {
    child: Child,
    addr: String,
}

impl NodeProc {
    fn spawn() -> NodeProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_hsqp-node"))
            .args(["--listen", "127.0.0.1:0"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn hsqp-node");
        let stdout = child.stdout.take().expect("child stdout piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read listen banner");
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .expect("address in banner")
            .to_string();
        NodeProc { child, addr }
    }
}

impl Drop for NodeProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Run `hsqp` with the given extra args and return stdout, asserting
/// success.
fn run_open_loop_cli(extra: &[&str]) -> String {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_hsqp"));
    cmd.args([
        "--sf",
        "0.001",
        "--queries",
        "1,6",
        "--open-loop",
        "120000",
        "--duration",
        "2",
        "--tenants",
        "gold:4,silver:1",
        "--seed",
        "7",
    ]);
    cmd.args(extra);
    let out = cmd.output().expect("run hsqp --open-loop");
    assert!(
        out.status.success(),
        "open-loop run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 report")
}

fn assert_open_loop_report(report: &str) {
    for needle in [
        "\"schema\": \"hsqp-openloop-v1\"",
        "\"arrivals\": \"poisson\"",
        "\"tenant\": \"gold\"",
        "\"tenant\": \"silver\"",
        "\"queue_wait_ms\"",
        "\"failed\": 0",
    ] {
        assert!(
            report.contains(needle),
            "open-loop report missing {needle}: {report}"
        );
    }
}

/// Open-loop smoke on the in-process backend: the run completes, reports
/// the versioned schema, per-tenant sections, and zero failures.
#[test]
fn open_loop_smoke_local_backend() {
    let report = run_open_loop_cli(&["--nodes", "2"]);
    assert_open_loop_report(&report);
}

/// Open-loop smoke on the out-of-process backend: two real `hsqp-node`
/// servers, `--clients` worker slots, same report contract.
#[test]
fn open_loop_smoke_remote_backend() {
    let nodes: Vec<NodeProc> = (0..2).map(|_| NodeProc::spawn()).collect();
    let addrs = nodes
        .iter()
        .map(|n| n.addr.clone())
        .collect::<Vec<_>>()
        .join(",");
    let report = run_open_loop_cli(&["--cluster", &addrs, "--clients", "2"]);
    assert_open_loop_report(&report);
}
