//! Smoke test for the `hsqp` end-to-end driver binary: a 2-node SF 0.01
//! run must complete, emit well-formed JSON, and report a row count for
//! Q1 that matches the library-level correctness oracle (the same query
//! run through `Cluster::run` directly).

use std::collections::HashMap;
use std::process::Command;

use hsqp::engine::cluster::{Cluster, ClusterConfig};
use hsqp::engine::queries::tpch_query;

/// A minimal JSON value, parsed by [`parse_json`]. Enough structure to
/// verify well-formedness and pull scalar fields out of the report.
#[derive(Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(HashMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> &Json {
        match self {
            Json::Obj(m) => m.get(key).unwrap_or_else(|| panic!("missing key {key:?}")),
            other => panic!("expected object for key {key:?}, got {other:?}"),
        }
    }

    fn num(&self) -> f64 {
        match self {
            Json::Num(n) => *n,
            other => panic!("expected number, got {other:?}"),
        }
    }

    fn arr(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            other => panic!("expected array, got {other:?}"),
        }
    }
}

/// Strict recursive-descent JSON parser: rejects trailing garbage,
/// unterminated strings, and malformed numbers — the point of the test.
fn parse_json(s: &str) -> Json {
    let b: Vec<char> = s.chars().collect();
    let mut pos = 0;
    let v = parse_value(&b, &mut pos);
    skip_ws(&b, &mut pos);
    assert_eq!(pos, b.len(), "trailing garbage after JSON document");
    v
}

fn skip_ws(b: &[char], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(b: &[char], pos: &mut usize, c: char) {
    skip_ws(b, pos);
    assert!(
        *pos < b.len() && b[*pos] == c,
        "expected {c:?} at offset {pos}"
    );
    *pos += 1;
}

fn parse_value(b: &[char], pos: &mut usize) -> Json {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some('{') => {
            *pos += 1;
            let mut map = HashMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&'}') {
                *pos += 1;
                return Json::Obj(map);
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos) {
                    Json::Str(k) => k,
                    other => panic!("object key must be a string, got {other:?}"),
                };
                expect(b, pos, ':');
                map.insert(key, parse_value(b, pos));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Json::Obj(map);
                    }
                    other => panic!("expected ',' or '}}' in object, got {other:?}"),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&']') {
                *pos += 1;
                return Json::Arr(arr);
            }
            loop {
                arr.push(parse_value(b, pos));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Json::Arr(arr);
                    }
                    other => panic!("expected ',' or ']' in array, got {other:?}"),
                }
            }
        }
        Some('"') => {
            *pos += 1;
            let mut out = String::new();
            loop {
                match b.get(*pos) {
                    Some('"') => {
                        *pos += 1;
                        return Json::Str(out);
                    }
                    Some('\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some('n') => out.push('\n'),
                            Some('t') => out.push('\t'),
                            Some('u') => {
                                let hex: String = b[*pos + 1..*pos + 5].iter().collect();
                                let code = u32::from_str_radix(&hex, 16).expect("hex escape");
                                out.push(char::from_u32(code).expect("valid codepoint"));
                                *pos += 4;
                            }
                            Some(&c) => out.push(c),
                            None => panic!("unterminated escape"),
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        out.push(c);
                        *pos += 1;
                    }
                    None => panic!("unterminated string"),
                }
            }
        }
        Some(c) if *c == '-' || c.is_ascii_digit() => {
            let start = *pos;
            while *pos < b.len()
                && (b[*pos].is_ascii_digit() || matches!(b[*pos], '-' | '+' | '.' | 'e' | 'E'))
            {
                *pos += 1;
            }
            let text: String = b[start..*pos].iter().collect();
            Json::Num(
                text.parse()
                    .unwrap_or_else(|_| panic!("bad number {text:?}")),
            )
        }
        Some('t') | Some('f') | Some('n') => {
            for (lit, v) in [
                ("true", Json::Bool(true)),
                ("false", Json::Bool(false)),
                ("null", Json::Null),
            ] {
                if b[*pos..].starts_with(&lit.chars().collect::<Vec<_>>()[..]) {
                    *pos += lit.len();
                    return v;
                }
            }
            panic!("bad literal at offset {pos}");
        }
        other => panic!("unexpected {other:?} at offset {pos}"),
    }
}

/// The oracle: Q1's result cardinality from a direct library run.
fn oracle_q1_rows(sf: f64) -> usize {
    let cluster = Cluster::start(ClusterConfig::quick(1)).expect("oracle cluster");
    cluster.load_tpch(sf).expect("oracle load");
    let result = cluster
        .run(&tpch_query(1).expect("q1"))
        .expect("oracle run");
    let rows = result.row_count();
    cluster.shutdown();
    rows
}

#[test]
fn driver_2node_sf001_emits_wellformed_json() {
    let sf = 0.01;
    let out = Command::new(env!("CARGO_BIN_EXE_hsqp"))
        .args([
            "--sf",
            "0.01",
            "--nodes",
            "2",
            "--queries",
            "1,6",
            "--message-kb",
            "32",
        ])
        .output()
        .expect("driver ran");
    assert!(
        out.status.success(),
        "driver failed\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let report = parse_json(&String::from_utf8(out.stdout).expect("utf8 stdout"));
    assert_eq!(report.get("sf").num(), sf);
    assert_eq!(report.get("nodes").num(), 2.0);
    assert_eq!(report.get("failures").num(), 0.0);
    let queries = report.get("queries").arr();
    assert_eq!(queries.len(), 2);

    let q1 = &queries[0];
    assert_eq!(q1.get("query").num(), 1.0);
    assert!(q1.get("ms").num() > 0.0);
    assert_eq!(
        q1.get("rows").num() as usize,
        oracle_q1_rows(sf),
        "driver row count for Q1 must match the library oracle"
    );
}

#[test]
fn driver_clients_mode_reports_throughput_and_matching_rows() {
    let sf = 0.005;
    let out = Command::new(env!("CARGO_BIN_EXE_hsqp"))
        .args([
            "--sf",
            "0.005",
            "--nodes",
            "2",
            "--queries",
            "1,2,6",
            "--clients",
            "2",
            "--rounds",
            "2",
        ])
        .output()
        .expect("driver ran");
    assert!(
        out.status.success(),
        "clients mode failed\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = parse_json(&String::from_utf8(out.stdout).expect("utf8 stdout"));
    assert_eq!(report.get("clients").num(), 2.0);
    assert_eq!(report.get("rounds").num(), 2.0);
    assert_eq!(report.get("failures").num(), 0.0);
    let tp = report.get("throughput");
    // 2 clients x 2 rounds x 3 queries, all succeeding.
    assert_eq!(tp.get("total_queries").num(), 12.0);
    assert!(tp.get("queries_per_hour").num() > 0.0);
    assert!(tp.get("latency_ms").get("p50").num() > 0.0);
    assert!(
        tp.get("latency_ms").get("p99").num() >= tp.get("latency_ms").get("p50").num(),
        "p99 must dominate p50"
    );
    let queries = report.get("queries").arr();
    assert_eq!(queries.len(), 3);
    assert_eq!(queries[0].get("executions").num(), 4.0);
    assert_eq!(
        queries[0].get("rows").num() as usize,
        oracle_q1_rows(sf),
        "concurrent row count for Q1 must match the library oracle"
    );
}

#[test]
fn driver_rejects_bad_flags() {
    for args in [
        &["--sf", "0"][..],
        &["--nodes", "two"][..],
        &["--nodes", "0"][..],
        &["--workers", "0"][..],
        &["--workers", "-1"][..],
        &["--queries", "0"][..],
        &["--queries", "23"][..],
        &["--queries", ""][..],
        &["--message-kb", "0"][..],
        &["--clients", "0"][..],
        &["--rounds", "0"][..],
        &["--clients", "many"][..],
        &["--plan-mode", "telepathy"][..],
        // Out-of-range query numbers must be usage errors in builder mode
        // too, not a panic deep in the engine.
        &["--plan-mode", "builder", "--queries", "23"][..],
        &["--transport", "carrier-pigeon"][..],
        &["--expr-engine", "llvm"][..],
        &["--expr-engine", ""][..],
        &["--frobnicate", "yes"][..],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_hsqp"))
            .args(args)
            .output()
            .expect("driver ran");
        assert!(!out.status.success(), "args {args:?} must be rejected");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.starts_with("error: "),
            "args {args:?} must fail with a usage error, got: {stderr}"
        );
    }
}

#[test]
fn driver_builder_mode_matches_handwritten_row_counts() {
    let run = |mode: &str| {
        let out = Command::new(env!("CARGO_BIN_EXE_hsqp"))
            .args([
                "--sf",
                "0.005",
                "--nodes",
                "2",
                "--queries",
                "1,2,6,12,15",
                "--plan-mode",
                mode,
            ])
            .output()
            .expect("driver ran");
        assert!(
            out.status.success(),
            "{mode} driver failed\nstderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        parse_json(&String::from_utf8(out.stdout).expect("utf8 stdout"))
    };
    let hand = run("handwritten");
    let built = run("builder");
    assert_eq!(hand.get("plan_mode"), &Json::Str("handwritten".into()));
    assert_eq!(built.get("plan_mode"), &Json::Str("builder".into()));
    for (h, b) in hand
        .get("queries")
        .arr()
        .iter()
        .zip(built.get("queries").arr())
    {
        assert_eq!(h.get("query").num(), b.get("query").num());
        assert_eq!(
            h.get("rows").num(),
            b.get("rows").num(),
            "row counts must match for query {}",
            h.get("query").num()
        );
    }
}

/// The observability surfaces end to end: `--analyze` prints an annotated
/// tree to stderr, `--trace-out` writes well-formed trace JSON,
/// `--bench-out` writes a `hsqp-bench-v1` file, `--metrics` dumps the
/// registry — and `bench_check` accepts the fresh file against itself
/// while rejecting a doctored row count.
#[test]
fn driver_observability_flags_and_bench_check_roundtrip() {
    let dir = std::env::temp_dir().join(format!("hsqp_cli_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace = dir.join("trace.json");
    let bench = dir.join("bench.json");

    let out = Command::new(env!("CARGO_BIN_EXE_hsqp"))
        .args([
            "--sf",
            "0.005",
            "--nodes",
            "2",
            "--queries",
            "3,6",
            "--analyze",
            "--metrics",
            "--trace-out",
            trace.to_str().unwrap(),
            "--bench-out",
            bench.to_str().unwrap(),
        ])
        .output()
        .expect("driver ran");
    assert!(
        out.status.success(),
        "observability run failed\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("Exchange Gather") && stderr.contains("net wait"),
        "--analyze must print an annotated plan tree, got:\n{stderr}"
    );
    assert!(
        stderr.contains("queries.completed"),
        "--metrics must print the registry, got:\n{stderr}"
    );

    let trace_doc = parse_json(&std::fs::read_to_string(&trace).expect("trace written"));
    assert!(
        !trace_doc.get("traceEvents").arr().is_empty(),
        "trace must contain events"
    );

    let bench_text = std::fs::read_to_string(&bench).expect("bench written");
    let bench_doc = parse_json(&bench_text);
    assert_eq!(bench_doc.get("schema"), &Json::Str("hsqp-bench-v1".into()));
    assert_eq!(bench_doc.get("queries").arr().len(), 2);

    // bench_check: identity passes, doctored rows fail.
    let check = |baseline: &std::path::Path, current: &std::path::Path| {
        Command::new(env!("CARGO_BIN_EXE_bench_check"))
            .args([
                baseline.to_str().unwrap(),
                current.to_str().unwrap(),
                "--latency",
                "warn",
            ])
            .output()
            .expect("bench_check ran")
    };
    assert!(check(&bench, &bench).status.success());
    let doctored = dir.join("doctored.json");
    std::fs::write(
        &doctored,
        bench_text.replace("\"rows\": 1,", "\"rows\": 2,"),
    )
    .expect("doctored written");
    let bad = check(&bench, &doctored);
    assert!(
        !bad.status.success(),
        "bench_check must fail on row-count drift"
    );
    assert!(
        String::from_utf8_lossy(&bad.stderr).contains("row count drifted"),
        "drift must be reported"
    );

    // Best-of-N: a contention-inflated run alone trips the enforcing gate,
    // but adding one quiet run alongside it clears it (per-query minimum).
    let slow = dir.join("slow.json");
    std::fs::write(&slow, bench_text.replace("\"ms\": ", "\"ms\": 9")).expect("slow written");
    let gate = |currents: &[&std::path::Path]| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_bench_check"));
        cmd.arg(bench.to_str().unwrap());
        for c in currents {
            cmd.arg(c.to_str().unwrap());
        }
        cmd.args(["--latency", "fail", "--threshold", "1.5"])
            .output()
            .expect("bench_check ran")
    };
    assert!(
        !gate(&[&slow]).status.success(),
        "inflated run alone must fail the enforcing gate"
    );
    assert!(
        gate(&[&slow, &bench]).status.success(),
        "best-of-N with one quiet run must pass the enforcing gate"
    );
    let mixed = gate(&[&slow, &doctored]);
    assert!(
        !mixed.status.success()
            && String::from_utf8_lossy(&mixed.stderr).contains("disagree across current runs"),
        "cross-run row disagreement must be rejected"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// `--explain` under the default vm expression engine prints the compiled
/// program for every filter / map / aggregate input; under `--expr-engine
/// ast` it prints the plain operator tree only.
#[test]
fn driver_explain_prints_compiled_programs() {
    let explain = |engine: &str| {
        let out = Command::new(env!("CARGO_BIN_EXE_hsqp"))
            .args(["--queries", "6", "--explain", "--expr-engine", engine])
            .output()
            .expect("driver ran");
        assert!(
            out.status.success(),
            "explain ({engine}) failed\nstderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("utf8 stdout")
    };

    let vm = explain("vm");
    assert!(
        vm.contains("vm exprs"),
        "banner must name the engine:\n{vm}"
    );
    assert!(
        vm.contains("(p0") || vm.contains("(p0)"),
        "operators must be annotated with program ids:\n{vm}"
    );
    assert!(
        vm.contains("p0 =") && vm.contains("p1 ="),
        "Q6 must list its filter and aggregate-input programs:\n{vm}"
    );
    assert!(
        vm.contains("cmp_i64") && vm.contains("arith_f64"),
        "listings must show typed kernels:\n{vm}"
    );

    let ast = explain("ast");
    assert!(ast.contains("ast exprs"), "{ast}");
    assert!(
        !ast.contains("p0 ="),
        "ast mode must not print compiled programs:\n{ast}"
    );
}

/// `--explain --analyze` executes the queries and emits each query's plan
/// (with compiled programs) and its profile as one coherent stderr block —
/// the profiler must not interleave into the middle of a plan.
#[test]
fn driver_explain_analyze_blocks_are_wellformed() {
    let out = Command::new(env!("CARGO_BIN_EXE_hsqp"))
        .args([
            "--sf",
            "0.005",
            "--nodes",
            "2",
            "--queries",
            "3,6",
            "--explain",
            "--analyze",
        ])
        .output()
        .expect("driver ran");
    assert!(
        out.status.success(),
        "explain+analyze failed\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // stdout still carries the well-formed JSON report, untouched by the
    // explain/profile stream.
    let report = parse_json(&String::from_utf8(out.stdout).expect("utf8 stdout"));
    assert_eq!(report.get("failures").num(), 0.0);
    assert_eq!(report.get("queries").arr().len(), 2);

    let stderr = String::from_utf8_lossy(&out.stderr);
    // One block per query: header, stages with program annotations,
    // program listings, then the profile's annotated tree — in that order,
    // with nothing wedged between the plan and its programs.
    for n in [3, 6] {
        let start = stderr
            .find(&format!("== Q{n} "))
            .unwrap_or_else(|| panic!("missing explain block for Q{n}:\n{stderr}"));
        let block_end = stderr[start + 4..]
            .find("== Q")
            .map_or(stderr.len(), |i| start + 4 + i);
        let block = &stderr[start..block_end];
        let stage = block.find("-- stage 1/").expect("stage header in block");
        let program = block.find("p0 =").expect("program listing in block");
        let profile = block.find("net wait").expect("profile in block");
        assert!(
            stage < program && program < profile,
            "Q{n} block out of order (stage@{stage}, program@{program}, profile@{profile}):\n{block}"
        );
        // No per-query progress line may split the block: the progress
        // line for this query precedes its block.
        let progress = format!("Q{n} ");
        assert!(
            !block[block.find('\n').unwrap_or(0) + 1..].starts_with(&progress),
            "progress line interleaved into Q{n}'s block:\n{block}"
        );
    }
}

/// New observability flags reject bad values and bad mode combinations.
#[test]
fn driver_rejects_bad_observability_flags() {
    for args in [
        &["--profile", "maybe"][..],
        &["--trace-out"][..],
        &["--bench-out"][..],
        // Profile-derived outputs need the serial mode.
        &["--clients", "2", "--analyze"][..],
        &["--rounds", "2", "--bench-out", "/tmp/x.json"][..],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_hsqp"))
            .args(args)
            .output()
            .expect("driver ran");
        assert!(!out.status.success(), "args {args:?} must be rejected");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.starts_with("error: "),
            "args {args:?} must fail with a usage error, got: {stderr}"
        );
    }
}
