//! Stress tests for the concurrent query API: N client threads running the
//! full 22-query TPC-H set over shared 2- and 4-node clusters must produce
//! row counts identical to serial execution; `cancel()` must free a
//! query's temps and fabric slots without wedging the multiplexers; and
//! overlapping multi-stage queries with identically named temps must stay
//! namespace-isolated.

use std::collections::HashMap;

use hsqp::engine::cluster::{Cluster, ClusterConfig, QueryHandle};
use hsqp::engine::error::EngineError;
use hsqp::engine::planner::Planner;
use hsqp::engine::queries::{tpch_logical, Query, ALL_QUERIES};
use hsqp::tpch::TpchDb;

const SF: f64 = 0.002;

/// Plan all 22 builder queries once against the loaded cluster.
fn plan_all(cluster: &Cluster) -> Vec<(u32, Query)> {
    let planner = Planner::for_cluster(cluster);
    ALL_QUERIES
        .iter()
        .map(|&n| {
            let logical = tpch_logical(n).unwrap();
            (n, planner.plan_query(&logical).unwrap())
        })
        .collect()
}

/// Serial row counts as the oracle, then the same plans from N client
/// threads concurrently — identical counts required, nothing leaked.
fn concurrent_matches_serial_on(nodes: u16, clients: usize) {
    let cluster = Cluster::start(ClusterConfig {
        max_concurrent: clients as u16,
        ..ClusterConfig::quick(nodes)
    })
    .unwrap();
    cluster.load_tpch_db(TpchDb::generate(SF)).unwrap();
    let plans = plan_all(&cluster);

    let serial: HashMap<u32, usize> = plans
        .iter()
        .map(|(n, q)| (*n, cluster.run(q).unwrap().row_count()))
        .collect();

    let per_client: Vec<HashMap<u32, usize>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let cluster = &cluster;
                let plans = &plans;
                scope.spawn(move || {
                    // Stagger the starting query so threads overlap
                    // *different* queries, not the same one in lockstep.
                    plans
                        .iter()
                        .cycle()
                        .skip(c * 5)
                        .take(plans.len())
                        .map(|(n, q)| (*n, cluster.run(q).unwrap().row_count()))
                        .collect::<HashMap<u32, usize>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (c, counts) in per_client.iter().enumerate() {
        for (n, rows) in counts {
            assert_eq!(
                rows, &serial[n],
                "client {c} Q{n} on {nodes} nodes diverged from serial"
            );
        }
    }
    assert_eq!(
        cluster.active_temp_namespaces(),
        0,
        "temp namespaces leaked"
    );
    cluster.shutdown();
}

#[test]
fn four_clients_all_queries_match_serial_on_2_nodes() {
    concurrent_matches_serial_on(2, 4);
}

#[test]
fn four_clients_all_queries_match_serial_on_4_nodes() {
    concurrent_matches_serial_on(4, 4);
}

/// Overlapping multi-stage queries that materialize identically named
/// temps (every submission of Q2 creates a "candidates" temp, Q15 a
/// "revenue" temp) must stay isolated per query id.
#[test]
fn temp_namespaces_isolate_overlapping_multi_stage_queries() {
    let cluster = Cluster::start(ClusterConfig {
        max_concurrent: 6,
        ..ClusterConfig::quick(3)
    })
    .unwrap();
    cluster.load_tpch_db(TpchDb::generate(SF)).unwrap();
    let planner = Planner::for_cluster(&cluster);
    let multi_stage: Vec<(u32, Query)> = [2u32, 11, 15, 22]
        .iter()
        .map(|&n| (n, planner.plan_query(&tpch_logical(n).unwrap()).unwrap()))
        .collect();
    let serial: HashMap<u32, usize> = multi_stage
        .iter()
        .map(|(n, q)| (*n, cluster.run(q).unwrap().row_count()))
        .collect();

    // Three overlapping submissions of each multi-stage query: six
    // in-flight "candidates"/"revenue" temps at once.
    let handles: Vec<(u32, QueryHandle)> = (0..3)
        .flat_map(|_| {
            multi_stage
                .iter()
                .map(|(n, q)| (*n, cluster.submit(q).unwrap()))
                .collect::<Vec<_>>()
        })
        .collect();
    for (n, h) in handles {
        let result = h.wait().unwrap();
        assert_eq!(
            result.row_count(),
            serial[&n],
            "overlapping Q{n} diverged from serial"
        );
        assert!(
            result.bytes_shuffled > 0,
            "per-query stats must attribute shuffled bytes on a 3-node cluster"
        );
    }
    assert_eq!(cluster.active_temp_namespaces(), 0);
    cluster.shutdown();
}

/// Cancel queries at every stage of their life (queued, mid-flight,
/// finished): each must either complete normally or fail with
/// `Cancelled`, temps and hub slots must be freed, and the cluster must
/// stay fully usable — no wedged multiplexers.
#[test]
fn cancel_frees_temps_and_slots_without_wedging() {
    let cluster = Cluster::start(ClusterConfig {
        max_concurrent: 1, // force a queue so some cancels hit queued queries
        ..ClusterConfig::quick(2)
    })
    .unwrap();
    cluster.load_tpch_db(TpchDb::generate(SF)).unwrap();
    let planner = Planner::for_cluster(&cluster);
    // Multi-stage query: a cancel can land between its stages.
    let q2 = planner.plan_query(&tpch_logical(2).unwrap()).unwrap();
    let serial_rows = cluster.run(&q2).unwrap().row_count();

    let mut cancelled = 0;
    let mut completed = 0;
    for round in 0..6 {
        let handles: Vec<QueryHandle> = (0..4).map(|_| cluster.submit(&q2).unwrap()).collect();
        // Vary the cancellation timing: immediately, or after a short
        // delay so the head query is mid-flight.
        if round % 2 == 1 {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        for h in &handles {
            h.cancel();
        }
        for h in handles {
            match h.wait() {
                Err(EngineError::Cancelled) => cancelled += 1,
                Ok(r) => {
                    completed += 1;
                    assert_eq!(r.row_count(), serial_rows, "cancel corrupted a result");
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert_eq!(
            cluster.active_temp_namespaces(),
            0,
            "cancelled queries leaked temps"
        );
    }
    assert!(cancelled > 0, "no cancellation ever took effect");
    // The engine still answers correctly afterwards — nothing wedged.
    let after = cluster.run(&q2).unwrap();
    assert_eq!(after.row_count(), serial_rows);
    let _ = completed;
    cluster.shutdown();
}

/// Per-query fabric accounting: two concurrent queries see their own
/// bytes, not each other's, and the sum is consistent with the fabric
/// totals.
#[test]
fn per_query_stats_are_isolated() {
    let cluster = Cluster::start(ClusterConfig {
        max_concurrent: 2,
        ..ClusterConfig::quick(3)
    })
    .unwrap();
    cluster.load_tpch_db(TpchDb::generate(SF)).unwrap();
    let planner = Planner::for_cluster(&cluster);
    // A tiny query and a shuffle-heavy one.
    let small = planner.plan_query(&tpch_logical(6).unwrap()).unwrap();
    let big = planner.plan_query(&tpch_logical(10).unwrap()).unwrap();

    let small_serial = cluster.run(&small).unwrap().bytes_shuffled;
    let big_serial = cluster.run(&big).unwrap().bytes_shuffled;

    let hb = cluster.submit(&big).unwrap();
    let hs = cluster.submit(&small).unwrap();
    let rb = hb.wait().unwrap();
    let rs = hs.wait().unwrap();
    // Exact byte counts jitter with work-stealing-dependent message
    // packing, but each query must see its *own* traffic, not the
    // other's: the tiny query cannot inherit the shuffle-heavy one's
    // bytes, and both must be in the ballpark of their serial runs.
    let close = |concurrent: u64, serial: u64| {
        concurrent as f64 >= serial as f64 * 0.5 && concurrent as f64 <= serial as f64 * 2.0
    };
    assert!(
        rs.bytes_shuffled < rb.bytes_shuffled,
        "small query ({}) must report fewer bytes than the big one ({})",
        rs.bytes_shuffled,
        rb.bytes_shuffled
    );
    assert!(
        close(rs.bytes_shuffled, small_serial),
        "small query reported {} bytes, serial was {small_serial}",
        rs.bytes_shuffled
    );
    assert!(
        close(rb.bytes_shuffled, big_serial),
        "big query reported {} bytes, serial was {big_serial}",
        rb.bytes_shuffled
    );
    cluster.shutdown();
}
