//! Out-of-process cluster integration tests: spawn real `hsqp-node` child
//! processes, drive them with [`ProcessCluster`], and check row parity
//! against the in-process simulated cluster plus failure containment when
//! a node process is killed mid-query.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use hsqp::engine::cluster::{Cluster, ClusterConfig};
use hsqp::engine::queries::tpch_query;
use hsqp::engine::remote::{ProcessCluster, ProcessClusterConfig};
use hsqp::engine::EngineError;

/// A spawned `hsqp-node` child process, killed on drop so a failing test
/// cannot leak servers.
struct NodeProc {
    child: Child,
    addr: String,
}

impl NodeProc {
    /// Spawn a node on an OS-assigned port and parse the bound address
    /// from its single stdout line.
    fn spawn() -> NodeProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_hsqp-node"))
            .args(["--listen", "127.0.0.1:0"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn hsqp-node");
        let stdout = child.stdout.take().expect("child stdout piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read listen banner");
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .expect("address in banner")
            .to_string();
        assert!(
            line.starts_with("hsqp-node listening on"),
            "unexpected banner: {line:?}"
        );
        NodeProc { child, addr }
    }
}

impl Drop for NodeProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_cluster(n: usize) -> (Vec<NodeProc>, ProcessCluster) {
    let nodes: Vec<NodeProc> = (0..n).map(|_| NodeProc::spawn()).collect();
    let addrs: Vec<String> = nodes.iter().map(|p| p.addr.clone()).collect();
    let pc = ProcessCluster::connect(&addrs, ProcessClusterConfig::default())
        .expect("connect process cluster");
    (nodes, pc)
}

/// Q1/Q3/Q5/Q12 over three real node processes must return exactly the
/// row counts the in-process simulated cluster returns (same SF, same
/// node count — identical chunked placement, so identical results).
#[test]
fn process_cluster_rows_match_in_process() {
    const SF: f64 = 0.01;
    let (nodes, pc) = spawn_cluster(3);
    pc.load_tpch(SF).expect("load TPC-H on the node processes");

    let local = Cluster::start(ClusterConfig::quick(3)).expect("start in-process cluster");
    local.load_tpch(SF).expect("load TPC-H in-process");

    for qn in [1u32, 3, 5, 12] {
        let query = tpch_query(qn).expect("build query");
        let remote = pc
            .run(&query)
            .unwrap_or_else(|e| panic!("Q{qn} remote: {e}"));
        let reference = local
            .run(&query)
            .unwrap_or_else(|e| panic!("Q{qn} local: {e}"));
        assert_eq!(
            remote.table.rows(),
            reference.table.rows(),
            "Q{qn}: process cluster rows diverge from in-process"
        );
    }
    local.shutdown();
    pc.shutdown();
    drop(nodes);
}

/// Killing a node process mid-query must surface as an error on the
/// coordinator within a bounded time — never a wedged exchange. The
/// surviving peers get `PeerGone` from their socket readers and the
/// coordinator's control reader fails the pending query.
#[test]
fn killing_a_node_mid_query_errors_within_timeout() {
    let (mut nodes, pc) = spawn_cluster(2);
    pc.load_tpch(0.01).expect("load TPC-H");

    // Sanity: the cluster works before the kill.
    let q3 = tpch_query(3).expect("build Q3");
    pc.run(&q3).expect("Q3 before the kill");

    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            // Loop until the kill lands mid-query; each iteration either
            // completes normally (pre-kill) or returns the error under test.
            let outcome = loop {
                match pc.run(&q3) {
                    Ok(_) => continue,
                    Err(e) => break e,
                }
            };
            let _ = tx.send(outcome);
        });
        std::thread::sleep(Duration::from_millis(100));
        let victim = &mut nodes[1];
        victim.child.kill().expect("kill node 1");
        victim.child.wait().expect("reap node 1");

        let err = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("coordinator must fail the query, not wedge");
        match err {
            EngineError::Execution(_) | EngineError::ClusterDown => {}
            other => panic!("unexpected error kind: {other:?}"),
        }
    });

    // The cluster is marked down; later submissions fail fast.
    assert!(pc.run(&q3).is_err(), "dead cluster must reject new queries");
}
