//! Cross-crate integration: all 22 TPC-H queries must produce identical
//! results on a single server and on a multi-server cluster, across
//! transports and engine variants — the core correctness invariant of
//! distributed query execution.

use hsqp::engine::cluster::{Cluster, ClusterConfig, EngineKind, Transport};
use hsqp::engine::queries::{tpch_query, ALL_QUERIES};
use hsqp::storage::{Table, Value};
use hsqp::tpch::TpchDb;

const SF: f64 = 0.002;

/// Compare tables modulo row order and float rounding.
fn assert_tables_equal(a: &Table, b: &Table, what: &str) {
    assert_eq!(a.rows(), b.rows(), "{what}: row counts differ");
    assert_eq!(a.schema().len(), b.schema().len(), "{what}: arity differs");
    let rows = |t: &Table| -> Vec<Vec<String>> {
        let mut rows: Vec<Vec<String>> = (0..t.rows())
            .map(|r| {
                (0..t.schema().len())
                    .map(|c| match t.value(r, c) {
                        Value::F64(x) => format!("{x:.2}"),
                        v => v.to_string(),
                    })
                    .collect()
            })
            .collect();
        rows.sort();
        rows
    };
    assert_eq!(rows(a), rows(b), "{what}: contents differ");
}

fn run_all(cluster: &Cluster) -> Vec<Table> {
    ALL_QUERIES
        .iter()
        .map(|&n| {
            let q = tpch_query(n).unwrap();
            cluster
                .run(&q)
                .unwrap_or_else(|e| panic!("query {n} failed: {e}"))
                .table
        })
        .collect()
}

#[test]
fn all_queries_match_across_cluster_sizes() {
    let db = TpchDb::generate(SF);

    let single = Cluster::start(ClusterConfig::quick(1)).unwrap();
    single.load_tpch_db(db.clone()).unwrap();
    let reference = run_all(&single);
    single.shutdown();

    let multi = Cluster::start(ClusterConfig::quick(3)).unwrap();
    multi.load_tpch_db(db).unwrap();
    let distributed = run_all(&multi);
    multi.shutdown();

    for ((n, a), b) in ALL_QUERIES.iter().zip(&reference).zip(&distributed) {
        assert_tables_equal(a, b, &format!("query {n} (1 vs 3 nodes)"));
    }
}

#[test]
fn queries_match_over_tcp_transport() {
    let db = TpchDb::generate(SF);

    let rdma = Cluster::start(ClusterConfig::quick(2)).unwrap();
    rdma.load_tpch_db(db.clone()).unwrap();

    let tcp_cfg = ClusterConfig {
        transport: Transport::tcp(),
        ..ClusterConfig::quick(2)
    };
    let tcp = Cluster::start(tcp_cfg).unwrap();
    tcp.load_tpch_db(db).unwrap();

    // A representative subset (all operator shapes) to keep runtime sane.
    for n in [1, 3, 6, 13, 16, 17, 21, 22] {
        let q = tpch_query(n).unwrap();
        let a = rdma.run(&q).unwrap().table;
        let b = tcp.run(&q).unwrap().table;
        assert_tables_equal(&a, &b, &format!("query {n} (rdma vs tcp)"));
    }
    rdma.shutdown();
    tcp.shutdown();
}

#[test]
fn classic_engine_matches_hybrid() {
    let db = TpchDb::generate(SF);

    let hybrid = Cluster::start(ClusterConfig::quick(2)).unwrap();
    hybrid.load_tpch_db(db.clone()).unwrap();

    let classic_cfg = ClusterConfig {
        engine: EngineKind::Classic,
        transport: Transport::rdma_unscheduled(),
        ..ClusterConfig::quick(2)
    };
    let classic = Cluster::start(classic_cfg).unwrap();
    classic.load_tpch_db(db).unwrap();

    for n in [1, 4, 5, 10, 12, 14, 18] {
        let q = tpch_query(n).unwrap();
        let a = hybrid.run(&q).unwrap().table;
        let b = classic.run(&q).unwrap().table;
        assert_tables_equal(&a, &b, &format!("query {n} (hybrid vs classic)"));
    }
    hybrid.shutdown();
    classic.shutdown();
}

#[test]
fn partitioned_placement_matches_chunked() {
    let db = TpchDb::generate(SF);

    let chunked = Cluster::start(ClusterConfig::quick(2)).unwrap();
    chunked.load_tpch_db(db.clone()).unwrap();

    let part_cfg = ClusterConfig {
        placement: hsqp::storage::placement::Placement::Partitioned,
        ..ClusterConfig::quick(2)
    };
    let partitioned = Cluster::start(part_cfg).unwrap();
    partitioned.load_tpch_db(db).unwrap();

    for n in [2, 3, 9, 11, 15, 19, 20] {
        let q = tpch_query(n).unwrap();
        let a = chunked.run(&q).unwrap().table;
        let b = partitioned.run(&q).unwrap().table;
        assert_tables_equal(&a, &b, &format!("query {n} (chunked vs partitioned)"));
    }
    chunked.shutdown();
    partitioned.shutdown();
}
