//! Differential tests for the distributed planner: all 22 TPC-H queries on
//! the logical query builder must produce results identical to their
//! hand-written physical plans (the oracle), on 2- and 4-node clusters —
//! plus property tests that random filter/aggregate logical plans and
//! random multi-stage `LogicalQuery`s (random parameter arity, CTE reuse)
//! lower through the planner without panicking.

use proptest::prelude::*;

use hsqp::engine::cluster::{Cluster, ClusterConfig};
use hsqp::engine::expr::{col, lit, litf, param, Expr};
use hsqp::engine::logical::{LogicalPlan, LogicalQuery};
use hsqp::engine::plan::{AggFunc, AggSpec, SortKey};
use hsqp::engine::planner::{Planner, PlannerConfig};
use hsqp::engine::queries::{tpch_logical, tpch_query, ALL_QUERIES};
use hsqp::storage::{date_from_ymd, Table, Value};
use hsqp::tpch::{TpchDb, TpchTable};

const SF: f64 = 0.01;

/// Compare tables modulo row order and float rounding (same comparator as
/// the cross-cluster correctness suite).
fn assert_tables_equal(a: &Table, b: &Table, what: &str) {
    assert_eq!(a.rows(), b.rows(), "{what}: row counts differ");
    assert_eq!(a.schema().len(), b.schema().len(), "{what}: arity differs");
    let rows = |t: &Table| -> Vec<Vec<String>> {
        let mut rows: Vec<Vec<String>> = (0..t.rows())
            .map(|r| {
                (0..t.schema().len())
                    .map(|c| match t.value(r, c) {
                        Value::F64(x) => format!("{x:.2}"),
                        v => v.to_string(),
                    })
                    .collect()
            })
            .collect();
        rows.sort();
        rows
    };
    assert_eq!(rows(a), rows(b), "{what}: contents differ");
}

fn builder_matches_handwritten_on(nodes: u16) {
    let cluster = Cluster::start(ClusterConfig::quick(nodes)).unwrap();
    cluster.load_tpch_db(TpchDb::generate(SF)).unwrap();
    let planner = Planner::for_cluster(&cluster);
    for n in ALL_QUERIES {
        let oracle = cluster
            .run(&tpch_query(n).unwrap())
            .unwrap_or_else(|e| panic!("handwritten Q{n} failed: {e}"))
            .table;
        let logical = tpch_logical(n).unwrap();
        let query = planner
            .plan_query(&logical)
            .unwrap_or_else(|e| panic!("planning Q{n} failed: {e}"));
        let built = cluster
            .run(&query)
            .unwrap_or_else(|e| panic!("builder Q{n} failed: {e}"))
            .table;
        // Guard against vacuous agreement: at SF 0.01 every query except
        // Q9 returns rows, so "both modes identically empty" is a bug in
        // shared machinery (e.g. a join-key type mismatch), not a match.
        if n != 9 {
            assert!(oracle.rows() > 0, "Q{n} oracle returned no rows at SF {SF}");
        }
        assert_tables_equal(&oracle, &built, &format!("Q{n} ({nodes} nodes)"));
    }
    cluster.shutdown();
}

#[test]
fn builder_matches_handwritten_on_2_nodes() {
    builder_matches_handwritten_on(2);
}

#[test]
fn builder_matches_handwritten_on_4_nodes() {
    builder_matches_handwritten_on(4);
}

/// Feedback-driven re-planning may change *plans*, never *answers*: all 22
/// queries must return identical tables in `--stats feedback` and
/// `--stats static`, both on the first (cold-cache) submission and on the
/// second, where corrected estimates are in force.
fn feedback_matches_static_on(nodes: u16) {
    use hsqp::engine::session::Session;
    use hsqp::engine::stats::StatsMode;
    let session = |mode: StatsMode| {
        Session::builder()
            .nodes(nodes)
            .tpch(SF)
            .stats_mode(mode)
            .build()
            .unwrap()
    };
    let stat = session(StatsMode::Static);
    let fb = session(StatsMode::Feedback);
    for n in ALL_QUERIES {
        let logical = tpch_logical(n).unwrap();
        let oracle = stat
            .run(&logical)
            .unwrap_or_else(|e| panic!("static Q{n} failed: {e}"))
            .table;
        let cold = fb
            .run(&logical)
            .unwrap_or_else(|e| panic!("feedback Q{n} (cold) failed: {e}"))
            .table;
        assert_tables_equal(&oracle, &cold, &format!("Q{n} cold ({nodes} nodes)"));
        let warm = fb
            .run(&logical)
            .unwrap_or_else(|e| panic!("feedback Q{n} (warm) failed: {e}"))
            .table;
        assert_tables_equal(&oracle, &warm, &format!("Q{n} warm ({nodes} nodes)"));
    }
    assert!(
        !fb.feedback_cache().is_empty(),
        "feedback session recorded no observations"
    );
    stat.shutdown();
    fb.shutdown();
}

#[test]
fn feedback_matches_static_on_2_nodes() {
    feedback_matches_static_on(2);
}

#[test]
fn feedback_matches_static_on_4_nodes() {
    feedback_matches_static_on(4);
}

/// Regression: a fixed-point Decimal key equi-joined against a Float64 key
/// (e.g. an aggregate output) must match by value, in the hash join *and*
/// in the partition hashing a forced repartition exercises. Before join
/// keys were canonicalized by logical type this silently returned zero
/// rows (i64 cents vs f64 bits), which is why Q2 needed an explicit
/// `MapExpr::typed` cast.
#[test]
fn decimal_joins_float64_keys_across_repartition() {
    use hsqp::engine::logical::JoinStrategy;
    use hsqp::engine::plan::JoinKind;
    let cluster = Cluster::start(ClusterConfig::quick(3)).unwrap();
    cluster.load_tpch_db(TpchDb::generate(0.002)).unwrap();
    let planner = Planner::for_cluster(&cluster);

    // MIN(ps_supplycost) per part is a Float64 column; ps_supplycost is a
    // Decimal. Joining partsupp back on (partkey, cost) keeps exactly the
    // rows achieving their part's minimum — at least one per part.
    let min_cost = LogicalPlan::scan(TpchTable::Partsupp)
        .aggregate(
            &["ps_partkey"],
            vec![AggSpec::new(AggFunc::Min, col("ps_supplycost"), "min_cost")],
        )
        .select(vec![
            hsqp::engine::plan::MapExpr::new("mc_partkey", col("ps_partkey")),
            hsqp::engine::plan::MapExpr::new("mc_cost", col("min_cost")),
        ]);
    // Force hash-repartitioning both sides on the mixed-type key pair so
    // the partition hash (not just the join hash) must agree.
    let winners = LogicalPlan::scan(TpchTable::Partsupp).join_with(
        min_cost,
        &["ps_partkey", "ps_supplycost"],
        &["mc_partkey", "mc_cost"],
        JoinKind::LeftSemi,
        JoinStrategy::Repartition,
    );
    let parts = cluster
        .run(
            &planner
                .plan_query(&LogicalQuery::stage(
                    LogicalPlan::scan(TpchTable::Partsupp).aggregate(
                        &[],
                        vec![AggSpec::new(
                            AggFunc::CountDistinct,
                            col("ps_partkey"),
                            "parts",
                        )],
                    ),
                ))
                .unwrap(),
        )
        .unwrap()
        .table
        .value(0, 0)
        .as_i64();
    let matched = cluster
        .run(&planner.plan_query(&LogicalQuery::stage(winners)).unwrap())
        .unwrap();
    assert!(
        matched.row_count() as i64 >= parts,
        "every part has at least one minimum-cost supplier ({} matched, {parts} parts)",
        matched.row_count()
    );
    cluster.shutdown();
}

// --- property test: random logical plans lower without panicking ---------

const NUM_COLS: [&str; 5] = [
    "l_quantity",
    "l_extendedprice",
    "l_discount",
    "l_orderkey",
    "l_suppkey",
];
const GROUP_COLS: [&str; 3] = ["l_returnflag", "l_linestatus", "l_shipmode"];

/// A random comparison over one numeric lineitem column.
fn arb_leaf() -> impl Strategy<Value = Expr> {
    (0usize..NUM_COLS.len(), 0usize..6, -50i64..50_000).prop_map(|(c, op, v)| {
        let lhs = col(NUM_COLS[c]);
        let rhs = if c <= 2 {
            litf(v as f64 / 100.0)
        } else {
            lit(v)
        };
        match op {
            0 => lhs.eq(rhs),
            1 => lhs.ne(rhs),
            2 => lhs.lt(rhs),
            3 => lhs.le(rhs),
            4 => lhs.gt(rhs),
            _ => lhs.ge(rhs),
        }
    })
}

/// 1–3 leaves combined with AND/OR/NOT.
fn arb_predicate() -> impl Strategy<Value = Expr> {
    (
        proptest::collection::vec(arb_leaf(), 1..4),
        0usize..3,
        any::<bool>(),
    )
        .prop_map(|(leaves, combine, negate)| {
            let mut it = leaves.into_iter();
            let mut e = it.next().expect("at least one leaf");
            for next in it {
                e = match combine {
                    0 => e.and(next),
                    1 => e.or(next),
                    _ => e.and(next.not()),
                };
            }
            if negate {
                e = e.not();
            }
            e
        })
}

/// A random aggregate spec (index-named so outputs never collide).
fn arb_agg(idx: usize) -> impl Strategy<Value = AggSpec> {
    (0usize..6, 0usize..NUM_COLS.len()).prop_map(move |(f, c)| {
        let name = format!("agg{idx}");
        match f {
            0 => AggSpec::new(AggFunc::Sum, col(NUM_COLS[c]), &name),
            1 => AggSpec::new(AggFunc::Min, col(NUM_COLS[c]), &name),
            2 => AggSpec::new(AggFunc::Max, col(NUM_COLS[c]), &name),
            3 => AggSpec::new(AggFunc::Avg, col(NUM_COLS[c]), &name),
            4 => AggSpec::new(AggFunc::CountDistinct, col(NUM_COLS[c]), &name),
            _ => AggSpec::new(AggFunc::Count, lit(1), &name),
        }
    })
}

/// scan(lineitem) → optional filter → aggregate → optional sort/limit.
fn arb_logical() -> impl Strategy<Value = LogicalPlan> {
    (
        proptest::option::of(arb_predicate()),
        0usize..GROUP_COLS.len() + 1,
        (arb_agg(0), proptest::option::of(arb_agg(1))),
        any::<bool>(),
        proptest::option::of(1usize..100),
    )
        .prop_map(|(pred, groups, (agg0, agg1), sorted, limit)| {
            let mut lp = LogicalPlan::scan(TpchTable::Lineitem);
            if let Some(p) = pred {
                lp = lp.filter(p);
            }
            let group_by: Vec<&str> = GROUP_COLS[..groups].to_vec();
            let mut aggs = vec![agg0];
            aggs.extend(agg1);
            lp = lp.aggregate(&group_by, aggs);
            if sorted && groups > 0 {
                lp = lp.sort(vec![SortKey::asc(GROUP_COLS[0])]);
            }
            if let Some(n) = limit {
                lp = lp.limit(n);
            }
            lp
        })
}

proptest! {
    #[test]
    fn random_logical_plans_lower_without_panicking(
        lp in arb_logical(),
        nodes in 1u16..6,
    ) {
        use hsqp::engine::stats::{StatsCatalog, StatsMode};
        // Every stats mode must lower every valid plan: cost-based pruning
        // may pick different exchanges, never reject or panic.
        for mode in [StatsMode::Off, StatsMode::Static, StatsMode::Feedback] {
            let mut cfg = PlannerConfig::new(nodes);
            cfg.mode = mode;
            if mode != StatsMode::Off {
                cfg.catalog = Some(std::sync::Arc::new(StatsCatalog::declared_tpch(0.01)));
            }
            let plan = Planner::new(cfg).plan(&lp);
            prop_assert!(
                plan.is_ok(),
                "valid logical plan rejected under {:?}: {:?}",
                mode,
                plan.err()
            );
            // The lowered plan must end complete on the coordinator: its
            // root is a gather, a sort above one, or a coordinator-only
            // aggregate.
            prop_assert!(plan.unwrap().exchange_count() >= 1);
        }
    }
}

// --- property test: random multi-stage LogicalQuerys lower cleanly -------

proptest! {
    #[test]
    fn random_multi_stage_queries_lower_without_panicking(
        n_params in 1usize..4,
        param_ref in 0usize..3,
        cte_uses in 0usize..3,
        nodes in 1u16..6,
    ) {
        let param_ref = param_ref.min(n_params - 1);
        // Scalar stage: n_params global aggregates over lineitem.
        let aggs: Vec<AggSpec> = (0..n_params)
            .map(|i| AggSpec::new(AggFunc::Min, col(NUM_COLS[i % NUM_COLS.len()]), &format!("p{i}")))
            .collect();
        let scalar = LogicalPlan::scan(TpchTable::Lineitem).aggregate(&[], aggs);
        // Final stage: filter against a random bound parameter, plus
        // `cte_uses` semi joins against the shared supplier CTE.
        let mut fin = LogicalPlan::scan(TpchTable::Lineitem)
            .filter(col("l_quantity").ge(param(param_ref)));
        for _ in 0..cte_uses {
            fin = fin.join(
                LogicalPlan::from_cte("suppliers"),
                &["l_suppkey"],
                &["s_suppkey"],
                hsqp::engine::plan::JoinKind::LeftSemi,
            );
        }
        let fin = fin.aggregate(&[], vec![AggSpec::new(AggFunc::Count, lit(1), "cnt")]);
        let query = LogicalQuery::cte(
            "suppliers",
            LogicalPlan::scan(TpchTable::Supplier).project(&["s_suppkey"]),
        )
        .then(scalar)
        .then(fin);

        let planner = Planner::new(PlannerConfig::new(nodes));
        let physical = planner.plan_query(&query);
        prop_assert!(physical.is_ok(), "valid multi-stage query rejected: {:?}", physical.err());
        let physical = physical.unwrap();
        // One materialize stage, one parameter stage, one result stage.
        prop_assert_eq!(physical.stages.len(), 3);
    }
}

/// Invalid multi-stage queries are rejected with planner errors, never
/// panics: unbound parameters, unknown CTEs, CTEs referencing parameters,
/// duplicate CTE names, and stage-less queries.
#[test]
fn invalid_multi_stage_queries_are_rejected() {
    use hsqp::engine::error::EngineError;
    let planner = Planner::new(PlannerConfig::new(2));
    let count =
        |p: LogicalPlan| p.aggregate(&[], vec![AggSpec::new(AggFunc::Count, lit(1), "cnt")]);

    // Parameter 0 is never bound (single-stage query).
    let unbound = LogicalQuery::stage(count(
        LogicalPlan::scan(TpchTable::Lineitem).filter(col("l_quantity").ge(param(0))),
    ));
    assert!(matches!(
        planner.plan_query(&unbound),
        Err(EngineError::Planner(_))
    ));

    // Unknown CTE name.
    let unknown = LogicalQuery::stage(count(LogicalPlan::from_cte("nope")));
    assert!(matches!(
        planner.plan_query(&unknown),
        Err(EngineError::Planner(_))
    ));

    // A CTE may reference stage parameters only when an earlier stage
    // binds them; here the sole (result) stage would have to, so the
    // materialization could never run.
    let cte_param = LogicalQuery::cte(
        "v",
        LogicalPlan::scan(TpchTable::Lineitem).filter(col("l_quantity").ge(param(0))),
    )
    .then(count(LogicalPlan::from_cte("v")));
    assert!(matches!(
        planner.plan_query(&cte_param),
        Err(EngineError::Planner(_))
    ));

    // Duplicate CTE names.
    let dup = LogicalQuery::cte("v", LogicalPlan::scan(TpchTable::Nation))
        .with("v", LogicalPlan::scan(TpchTable::Region))
        .then(count(LogicalPlan::from_cte("v")));
    assert!(matches!(
        planner.plan_query(&dup),
        Err(EngineError::Planner(_))
    ));

    // A query with CTEs but no stages has no result.
    let no_stage = LogicalQuery::cte("v", LogicalPlan::scan(TpchTable::Nation));
    assert!(matches!(
        planner.plan_query(&no_stage),
        Err(EngineError::Planner(_))
    ));
}

/// A hand-built physical plan reading a temp relation no stage
/// materialized, or referencing a parameter no earlier stage bound, must
/// be rejected by the cluster up front — not panic in a node thread
/// mid-execution.
#[test]
fn dangling_temp_scan_and_unbound_param_are_errors_not_panics() {
    use hsqp::engine::error::EngineError;
    use hsqp::engine::plan::Plan;
    let cluster = Cluster::start(ClusterConfig::quick(1)).unwrap();
    cluster.load_tpch_db(TpchDb::generate(0.001)).unwrap();
    let r = cluster.run_plan(&Plan::temp_scan("nope").gather());
    assert!(matches!(r, Err(EngineError::Planner(_))), "got {r:?}");
    let unbound = Plan::scan(TpchTable::Lineitem)
        .filter(col("l_quantity").gt(param(0)))
        .gather();
    let r = cluster.run_plan(&unbound);
    assert!(matches!(r, Err(EngineError::Planner(_))), "got {r:?}");
    cluster.shutdown();
}

/// A hand-rolled multi-stage query executed for real: the scalar stage
/// binds the average quantity, the CTE is scanned twice, and the result
/// must match the equivalent single-stage computation.
#[test]
fn multi_stage_query_executes_end_to_end() {
    let cluster = Cluster::start(ClusterConfig::quick(2)).unwrap();
    cluster.load_tpch_db(TpchDb::generate(0.002)).unwrap();
    let planner = Planner::for_cluster(&cluster);

    // Average lineitem quantity, computed inline as the oracle.
    let avg = {
        let plan = LogicalPlan::scan(TpchTable::Lineitem).aggregate(
            &[],
            vec![AggSpec::new(AggFunc::Avg, col("l_quantity"), "avg_qty")],
        );
        let r = cluster
            .run(&planner.plan_query(&(&plan).into()).unwrap())
            .unwrap();
        r.table.value(0, 0).as_f64()
    };
    let oracle = {
        let plan = LogicalPlan::scan(TpchTable::Lineitem)
            .filter(col("l_quantity").lt(litf(avg)))
            .aggregate(&[], vec![AggSpec::new(AggFunc::Count, lit(1), "cnt")]);
        let r = cluster
            .run(&planner.plan_query(&(&plan).into()).unwrap())
            .unwrap();
        r.table.value(0, 0).as_i64()
    };

    // The same computation as a two-stage query with a shared CTE scanned
    // by both stages.
    let staged = LogicalQuery::cte(
        "items",
        LogicalPlan::scan(TpchTable::Lineitem).project(&["l_quantity"]),
    )
    .then(LogicalPlan::from_cte("items").aggregate(
        &[],
        vec![AggSpec::new(AggFunc::Avg, col("l_quantity"), "avg_qty")],
    ))
    .then(
        LogicalPlan::from_cte("items")
            .filter(col("l_quantity").lt(param(0)))
            .aggregate(&[], vec![AggSpec::new(AggFunc::Count, lit(1), "cnt")]),
    );
    let physical = planner.plan_query(&staged).unwrap();
    assert_eq!(physical.stages.len(), 3);
    let r = cluster.run(&physical).unwrap();
    assert_eq!(r.table.value(0, 0).as_i64(), oracle);
    cluster.shutdown();
}

/// A CTE whose subplan consumes an earlier stage's scalar parameter: its
/// materialization is deferred past the binding stage, and the staged
/// result must match the equivalent inline computation.
#[test]
fn param_dependent_cte_executes_end_to_end() {
    let cluster = Cluster::start(ClusterConfig::quick(2)).unwrap();
    cluster.load_tpch_db(TpchDb::generate(0.002)).unwrap();
    let planner = Planner::for_cluster(&cluster);

    // Oracle: max supplier key, then lineitem rows for suppliers under
    // half of it, computed inline.
    let max_supp = {
        let plan = LogicalPlan::scan(TpchTable::Supplier)
            .aggregate(&[], vec![AggSpec::new(AggFunc::Max, col("s_suppkey"), "m")]);
        let r = cluster
            .run(&planner.plan_query(&(&plan).into()).unwrap())
            .unwrap();
        r.table.value(0, 0).as_i64()
    };
    let oracle = {
        let plan = LogicalPlan::scan(TpchTable::Lineitem)
            .filter(col("l_suppkey").mul(lit(2)).le(lit(max_supp)))
            .aggregate(&[], vec![AggSpec::new(AggFunc::Count, lit(1), "cnt")]);
        let r = cluster
            .run(&planner.plan_query(&(&plan).into()).unwrap())
            .unwrap();
        r.table.value(0, 0).as_i64()
    };

    // Staged: stage 1 binds param(0) = max(s_suppkey); the CTE filters
    // lineitem against it, so it can only materialize after that stage.
    let staged = LogicalQuery::stage(LogicalPlan::scan(TpchTable::Supplier).aggregate(
        &[],
        vec![AggSpec::new(AggFunc::Max, col("s_suppkey"), "max_supp")],
    ))
    .with(
        "cheap_lines",
        LogicalPlan::scan(TpchTable::Lineitem)
            .filter(col("l_suppkey").mul(lit(2)).le(param(0)))
            .project(&["l_suppkey"]),
    )
    .then(
        LogicalPlan::from_cte("cheap_lines")
            .aggregate(&[], vec![AggSpec::new(AggFunc::Count, lit(1), "cnt")]),
    );
    let physical = planner.plan_query(&staged).unwrap();
    assert_eq!(physical.stages.len(), 3);
    assert_eq!(
        physical.stages[0].role.label(),
        "params",
        "the binding stage must precede the dependent materialization"
    );
    let r = cluster.run(&physical).unwrap();
    assert_eq!(r.table.value(0, 0).as_i64(), oracle);
    cluster.shutdown();
}

/// A parameter stage whose output column is Decimal (fixed-point i64 in
/// storage) must bind as the promoted float — the representation every
/// downstream expression reads — not as raw cents.
#[test]
fn decimal_param_stage_binds_promoted_floats() {
    let cluster = Cluster::start(ClusterConfig::quick(2)).unwrap();
    cluster.load_tpch_db(TpchDb::generate(0.002)).unwrap();
    let planner = Planner::for_cluster(&cluster);

    // Stage 1: the single largest l_extendedprice, passed through as a raw
    // Decimal column (no aggregate, so no float promotion on the way out).
    // Stage 2: count rows at or above it — exactly the maximal row(s).
    // Were the parameter bound as cents, the count would be zero.
    let staged = LogicalQuery::stage(
        LogicalPlan::scan(TpchTable::Lineitem)
            .project(&["l_extendedprice"])
            .top_k(vec![SortKey::desc("l_extendedprice")], 1),
    )
    .then(
        LogicalPlan::scan(TpchTable::Lineitem)
            .filter(col("l_extendedprice").ge(param(0)))
            .aggregate(&[], vec![AggSpec::new(AggFunc::Count, lit(1), "cnt")]),
    );
    let physical = planner.plan_query(&staged).unwrap();
    let r = cluster.run(&physical).unwrap();
    let cnt = r.table.value(0, 0).as_i64();
    assert!(
        (1..100).contains(&cnt),
        "expected only the maximal row(s) to pass the bound, got {cnt}"
    );
    cluster.shutdown();
}

/// A couple of the random shapes, executed for real on a small cluster —
/// the planner's output must not just build, it must run.
#[test]
fn random_shapes_execute_end_to_end() {
    let cluster = Cluster::start(ClusterConfig::quick(2)).unwrap();
    cluster.load_tpch_db(TpchDb::generate(0.002)).unwrap();
    let planner = Planner::for_cluster(&cluster);

    let shapes: Vec<LogicalPlan> = vec![
        // Global (ungrouped) count(distinct) — raw rows gathered to the
        // coordinator, no pre-aggregation.
        LogicalPlan::scan(TpchTable::Lineitem).aggregate(
            &[],
            vec![AggSpec::new(
                AggFunc::CountDistinct,
                col("l_suppkey"),
                "suppliers",
            )],
        ),
        // Grouped count(distinct) — forced raw reshuffle by group key.
        LogicalPlan::scan(TpchTable::Lineitem).aggregate(
            &["l_returnflag"],
            vec![AggSpec::new(
                AggFunc::CountDistinct,
                col("l_suppkey"),
                "suppliers",
            )],
        ),
        // Filter + grouped aggregate + top-k.
        LogicalPlan::scan(TpchTable::Lineitem)
            .filter(col("l_shipdate").ge(lit(date_from_ymd(1995, 1, 1))))
            .aggregate(
                &["l_shipmode"],
                vec![
                    AggSpec::new(AggFunc::Sum, col("l_quantity"), "qty"),
                    AggSpec::new(AggFunc::Avg, col("l_discount"), "disc"),
                ],
            )
            .top_k(vec![SortKey::desc("qty")], 3),
        // Bare limit with no ordering.
        LogicalPlan::scan(TpchTable::Nation).limit(7),
    ];
    for (i, lp) in shapes.iter().enumerate() {
        let r = cluster
            .run_plan(&planner.plan(lp).unwrap())
            .unwrap_or_else(|e| panic!("shape {i} failed: {e}"));
        assert!(r.row_count() > 0, "shape {i} returned no rows");
    }
    cluster.shutdown();
}

/// Regression: Int64 join keys must equi-join Float64 keys *by value*
/// after a cross-node repartition. Both exchange bucketing and the join
/// hash tables canonicalize exactly-representable integers into the f64
/// key domain — if either side skipped the canonicalization, the two
/// sides of a matching pair would land on different nodes (or in
/// different hash buckets) and the join would silently drop rows.
#[test]
fn int64_and_float64_keys_co_partition_across_nodes() {
    use hsqp::engine::plan::{JoinKind, Plan};
    use hsqp::engine::queries::Query;
    use hsqp::storage::{Column, DataType, Field, Schema};

    let nodes: u16 = 3;
    let cluster = Cluster::start(ClusterConfig::quick(nodes)).unwrap();

    // Int64 side: keys 0..150, dealt round-robin across the nodes.
    let int_schema = Schema::new(vec![Field::new("ik", DataType::Int64)]);
    let int_parts: Vec<Table> = (0..nodes as i64)
        .map(|p| {
            let keys: Vec<i64> = (0..150).filter(|k| k % nodes as i64 == p).collect();
            Table::new(int_schema.clone(), vec![Column::I64(keys, None)])
        })
        .collect();

    // Float64 side: every third key as f64 — with key 0 written as -0.0 to
    // exercise zero canonicalization — dealt with a deliberate offset so
    // matching pairs start on *different* nodes and must be repartitioned.
    let f_schema = Schema::new(vec![Field::new("fk", DataType::Float64)]);
    let f_parts: Vec<Table> = (0..nodes as i64)
        .map(|p| {
            let keys: Vec<f64> = (0..150)
                .filter(|k| k % 3 == 0 && (k / 3) % nodes as i64 == p)
                .map(|k| if k == 0 { -0.0 } else { k as f64 })
                .collect();
            Table::new(f_schema.clone(), vec![Column::F64(keys, None)])
        })
        .collect();

    cluster.load_table(TpchTable::Nation, int_parts).unwrap();
    cluster.load_table(TpchTable::Region, f_parts).unwrap();

    let plan = Plan::scan(TpchTable::Nation)
        .repartition(&["ik"])
        .join(
            Plan::scan(TpchTable::Region).repartition(&["fk"]),
            &["ik"],
            &["fk"],
            JoinKind::Inner,
        )
        .gather();
    let result = cluster.run(&Query::single(0, plan)).unwrap();
    // 50 float keys (0, 3, .., 147), each matching exactly one int key.
    assert_eq!(
        result.row_count(),
        50,
        "mixed Int64/Float64 join dropped or duplicated matches"
    );
    cluster.shutdown();
}
