//! Differential tests for the distributed planner: every TPC-H query
//! migrated to the logical builder must produce results identical to its
//! hand-written physical plan (the oracle), on 2- and 4-node clusters —
//! plus a property test that random filter/aggregate logical plans over
//! `lineitem` lower through the planner without panicking.

use proptest::prelude::*;

use hsqp::engine::cluster::{Cluster, ClusterConfig};
use hsqp::engine::expr::{col, lit, litf, Expr};
use hsqp::engine::logical::LogicalPlan;
use hsqp::engine::plan::{AggFunc, AggSpec, SortKey};
use hsqp::engine::planner::{Planner, PlannerConfig};
use hsqp::engine::queries::{tpch_logical, tpch_query, BUILDER_QUERIES};
use hsqp::storage::{date_from_ymd, Table, Value};
use hsqp::tpch::{TpchDb, TpchTable};

const SF: f64 = 0.01;

/// Compare tables modulo row order and float rounding (same comparator as
/// the cross-cluster correctness suite).
fn assert_tables_equal(a: &Table, b: &Table, what: &str) {
    assert_eq!(a.rows(), b.rows(), "{what}: row counts differ");
    assert_eq!(a.schema().len(), b.schema().len(), "{what}: arity differs");
    let rows = |t: &Table| -> Vec<Vec<String>> {
        let mut rows: Vec<Vec<String>> = (0..t.rows())
            .map(|r| {
                (0..t.schema().len())
                    .map(|c| match t.value(r, c) {
                        Value::F64(x) => format!("{x:.2}"),
                        v => v.to_string(),
                    })
                    .collect()
            })
            .collect();
        rows.sort();
        rows
    };
    assert_eq!(rows(a), rows(b), "{what}: contents differ");
}

fn builder_matches_handwritten_on(nodes: u16) {
    let cluster = Cluster::start(ClusterConfig::quick(nodes)).unwrap();
    cluster.load_tpch_db(TpchDb::generate(SF)).unwrap();
    let planner = Planner::for_cluster(&cluster);
    for n in BUILDER_QUERIES {
        let oracle = cluster
            .run(&tpch_query(n).unwrap())
            .unwrap_or_else(|e| panic!("handwritten Q{n} failed: {e}"))
            .table;
        let logical = tpch_logical(n).unwrap();
        let plan = planner
            .plan(&logical)
            .unwrap_or_else(|e| panic!("planning Q{n} failed: {e}"));
        let built = cluster
            .run_plan(&plan)
            .unwrap_or_else(|e| panic!("builder Q{n} failed: {e}"))
            .table;
        assert_tables_equal(&oracle, &built, &format!("Q{n} ({nodes} nodes)"));
    }
    cluster.shutdown();
}

#[test]
fn builder_matches_handwritten_on_2_nodes() {
    builder_matches_handwritten_on(2);
}

#[test]
fn builder_matches_handwritten_on_4_nodes() {
    builder_matches_handwritten_on(4);
}

// --- property test: random logical plans lower without panicking ---------

const NUM_COLS: [&str; 5] = [
    "l_quantity",
    "l_extendedprice",
    "l_discount",
    "l_orderkey",
    "l_suppkey",
];
const GROUP_COLS: [&str; 3] = ["l_returnflag", "l_linestatus", "l_shipmode"];

/// A random comparison over one numeric lineitem column.
fn arb_leaf() -> impl Strategy<Value = Expr> {
    (0usize..NUM_COLS.len(), 0usize..6, -50i64..50_000).prop_map(|(c, op, v)| {
        let lhs = col(NUM_COLS[c]);
        let rhs = if c <= 2 {
            litf(v as f64 / 100.0)
        } else {
            lit(v)
        };
        match op {
            0 => lhs.eq(rhs),
            1 => lhs.ne(rhs),
            2 => lhs.lt(rhs),
            3 => lhs.le(rhs),
            4 => lhs.gt(rhs),
            _ => lhs.ge(rhs),
        }
    })
}

/// 1–3 leaves combined with AND/OR/NOT.
fn arb_predicate() -> impl Strategy<Value = Expr> {
    (
        proptest::collection::vec(arb_leaf(), 1..4),
        0usize..3,
        any::<bool>(),
    )
        .prop_map(|(leaves, combine, negate)| {
            let mut it = leaves.into_iter();
            let mut e = it.next().expect("at least one leaf");
            for next in it {
                e = match combine {
                    0 => e.and(next),
                    1 => e.or(next),
                    _ => e.and(next.not()),
                };
            }
            if negate {
                e = e.not();
            }
            e
        })
}

/// A random aggregate spec (index-named so outputs never collide).
fn arb_agg(idx: usize) -> impl Strategy<Value = AggSpec> {
    (0usize..6, 0usize..NUM_COLS.len()).prop_map(move |(f, c)| {
        let name = format!("agg{idx}");
        match f {
            0 => AggSpec::new(AggFunc::Sum, col(NUM_COLS[c]), &name),
            1 => AggSpec::new(AggFunc::Min, col(NUM_COLS[c]), &name),
            2 => AggSpec::new(AggFunc::Max, col(NUM_COLS[c]), &name),
            3 => AggSpec::new(AggFunc::Avg, col(NUM_COLS[c]), &name),
            4 => AggSpec::new(AggFunc::CountDistinct, col(NUM_COLS[c]), &name),
            _ => AggSpec::new(AggFunc::Count, lit(1), &name),
        }
    })
}

/// scan(lineitem) → optional filter → aggregate → optional sort/limit.
fn arb_logical() -> impl Strategy<Value = LogicalPlan> {
    (
        proptest::option::of(arb_predicate()),
        0usize..GROUP_COLS.len() + 1,
        (arb_agg(0), proptest::option::of(arb_agg(1))),
        any::<bool>(),
        proptest::option::of(1usize..100),
    )
        .prop_map(|(pred, groups, (agg0, agg1), sorted, limit)| {
            let mut lp = LogicalPlan::scan(TpchTable::Lineitem);
            if let Some(p) = pred {
                lp = lp.filter(p);
            }
            let group_by: Vec<&str> = GROUP_COLS[..groups].to_vec();
            let mut aggs = vec![agg0];
            aggs.extend(agg1);
            lp = lp.aggregate(&group_by, aggs);
            if sorted && groups > 0 {
                lp = lp.sort(vec![SortKey::asc(GROUP_COLS[0])]);
            }
            if let Some(n) = limit {
                lp = lp.limit(n);
            }
            lp
        })
}

proptest! {
    #[test]
    fn random_logical_plans_lower_without_panicking(
        lp in arb_logical(),
        nodes in 1u16..6,
    ) {
        let planner = Planner::new(PlannerConfig::new(nodes));
        let plan = planner.plan(&lp);
        prop_assert!(plan.is_ok(), "valid logical plan rejected: {:?}", plan.err());
        // The lowered plan must end complete on the coordinator: its root
        // is a gather, a sort above one, or a coordinator-only aggregate.
        prop_assert!(plan.unwrap().exchange_count() >= 1);
    }
}

/// A couple of the random shapes, executed for real on a small cluster —
/// the planner's output must not just build, it must run.
#[test]
fn random_shapes_execute_end_to_end() {
    let cluster = Cluster::start(ClusterConfig::quick(2)).unwrap();
    cluster.load_tpch_db(TpchDb::generate(0.002)).unwrap();
    let planner = Planner::for_cluster(&cluster);

    let shapes: Vec<LogicalPlan> = vec![
        // Global (ungrouped) count(distinct) — raw rows gathered to the
        // coordinator, no pre-aggregation.
        LogicalPlan::scan(TpchTable::Lineitem).aggregate(
            &[],
            vec![AggSpec::new(
                AggFunc::CountDistinct,
                col("l_suppkey"),
                "suppliers",
            )],
        ),
        // Grouped count(distinct) — forced raw reshuffle by group key.
        LogicalPlan::scan(TpchTable::Lineitem).aggregate(
            &["l_returnflag"],
            vec![AggSpec::new(
                AggFunc::CountDistinct,
                col("l_suppkey"),
                "suppliers",
            )],
        ),
        // Filter + grouped aggregate + top-k.
        LogicalPlan::scan(TpchTable::Lineitem)
            .filter(col("l_shipdate").ge(lit(date_from_ymd(1995, 1, 1))))
            .aggregate(
                &["l_shipmode"],
                vec![
                    AggSpec::new(AggFunc::Sum, col("l_quantity"), "qty"),
                    AggSpec::new(AggFunc::Avg, col("l_discount"), "disc"),
                ],
            )
            .top_k(vec![SortKey::desc("qty")], 3),
        // Bare limit with no ordering.
        LogicalPlan::scan(TpchTable::Nation).limit(7),
    ];
    for (i, lp) in shapes.iter().enumerate() {
        let r = cluster
            .run_plan(&planner.plan(lp).unwrap())
            .unwrap_or_else(|e| panic!("shape {i} failed: {e}"));
        assert!(r.row_count() > 0, "shape {i} returned no rows");
    }
    cluster.shutdown();
}
