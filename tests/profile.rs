//! Integration tests for the span-based query profiler: span nesting must
//! be physically consistent (children inside parents, network wait inside
//! exchange walls), exchanges must conserve rows across the cluster,
//! concurrent queries must keep their profiles isolated, and a cancelled
//! query must yield its partial profile without wedging anything.

use hsqp::engine::cluster::{Cluster, ClusterConfig, QueryHandle};
use hsqp::engine::error::EngineError;
use hsqp::engine::planner::Planner;
use hsqp::engine::profile::{QueryProfile, StageProfile};
use hsqp::engine::queries::{tpch_logical, Query};
use hsqp::tpch::TpchDb;

const SF: f64 = 0.002;

fn cluster(nodes: u16, max_concurrent: u16) -> Cluster {
    let cluster = Cluster::start(ClusterConfig {
        max_concurrent,
        ..ClusterConfig::quick(nodes)
    })
    .unwrap();
    cluster.load_tpch_db(TpchDb::generate(SF)).unwrap();
    cluster
}

fn plan(cluster: &Cluster, n: u32) -> Query {
    Planner::for_cluster(cluster)
        .plan_query(&tpch_logical(n).unwrap())
        .unwrap()
}

/// Timer granularity slack for span-nesting comparisons: start/end stamps
/// of parent and child are taken nanoseconds apart, never out of order by
/// more than scheduling noise.
const SLACK: std::time::Duration = std::time::Duration::from_micros(100);

fn assert_spans_nest(stage: &StageProfile, context: &str) {
    for (idx, op) in stage.ops.iter().enumerate() {
        let children = stage.children_of(idx);
        for node in 0..op.nodes.len() {
            let parent = &op.nodes[node];
            // Execution on a node is a depth-first walk on one thread, so
            // child spans are disjoint sub-intervals of the parent span.
            let child_sum: std::time::Duration = children
                .iter()
                .map(|&c| stage.ops[c].nodes[node].wall)
                .sum();
            assert!(
                child_sum <= parent.wall + SLACK,
                "{context} op {idx} ({}) node {node}: children walls sum to \
                 {child_sum:?} > parent wall {parent:?}",
                op.label,
                parent = parent.wall,
            );
            // An exchange's average per-worker network wait happens inside
            // its own span.
            assert!(
                parent.net_wait() <= parent.wall + SLACK,
                "{context} op {idx} ({}) node {node}: net wait {:?} > wall {:?}",
                op.label,
                parent.net_wait(),
                parent.wall,
            );
        }
    }
}

/// Q3 (two joins, pre-aggregation, gather) on 2 nodes: every operator's
/// children must fit inside it on every node, on every stage.
#[test]
fn child_spans_fit_inside_parents() {
    let cluster = cluster(2, 1);
    let q3 = plan(&cluster, 3);
    let result = cluster.run(&q3).unwrap();
    let profile = result.profile.as_ref().expect("profiling defaults on");
    assert_eq!(profile.stages.len(), q3.stages.len());
    for (i, stage) in profile.stages.iter().enumerate() {
        assert_spans_nest(stage, &format!("Q3 stage {}", i + 1));
        assert!(
            stage
                .ops
                .iter()
                .any(|op| op.nodes.iter().any(|n| !n.wall.is_zero())),
            "stage {} recorded no spans at all",
            i + 1
        );
    }
    // The root gather's output is the query result.
    assert_eq!(
        profile.stages.last().unwrap().actual_rows(),
        result.row_count() as u64
    );
    cluster.shutdown();
}

/// A repartition exchange must conserve rows cluster-wide: the rows every
/// node feeds into the shuffle equal the rows all nodes hold afterwards.
#[test]
fn repartition_conserves_rows_across_nodes() {
    let cluster = cluster(3, 1);
    // Q10 repartitions lineitem-joined tuples by custkey on 3 nodes.
    let q10 = plan(&cluster, 10);
    let result = cluster.run(&q10).unwrap();
    let profile = result.profile.as_ref().expect("profiling defaults on");
    let mut checked = 0;
    for stage in &profile.stages {
        for op in &stage.ops {
            if op.label.starts_with("Exchange HashPartition") {
                assert_eq!(
                    op.rows_in(),
                    op.rows_out(),
                    "repartition {} lost or duplicated rows",
                    op.label
                );
                assert!(op.rows_in() > 0, "repartition {} saw no rows", op.label);
                checked += 1;
            }
        }
    }
    assert!(checked > 0, "Q10 profile contained no repartition exchange");
    cluster.shutdown();
}

/// Four clients running different queries concurrently: each handle's
/// profile must describe its *own* query — stage count, plan labels, and
/// result cardinality — not a neighbour's.
#[test]
fn concurrent_queries_keep_profiles_isolated() {
    let cluster = cluster(2, 4);
    let queries: Vec<(u32, Query)> = [1u32, 3, 6, 12]
        .iter()
        .map(|&n| (n, plan(&cluster, n)))
        .collect();

    let handles: Vec<(u32, usize, QueryHandle)> = queries
        .iter()
        .map(|(n, q)| (*n, q.stages.len(), cluster.submit(q).unwrap()))
        .collect();
    for (n, stage_count, handle) in handles {
        let id = handle.id();
        let result = handle.wait().unwrap();
        let profile = result.profile.as_ref().expect("profiling defaults on");
        assert_eq!(profile.query, id, "Q{n} profile tagged with wrong query id");
        assert_eq!(
            profile.stages.len(),
            stage_count,
            "Q{n} profile has the wrong stage count"
        );
        assert_eq!(
            profile.stages.last().unwrap().actual_rows(),
            result.row_count() as u64,
            "Q{n} profile root cardinality diverged from its result"
        );
        for (i, stage) in profile.stages.iter().enumerate() {
            assert_spans_nest(stage, &format!("concurrent Q{n} stage {}", i + 1));
        }
    }
    cluster.shutdown();
}

/// A cancelled query keeps the stages that finished before the cancel took
/// effect — no panic, no wedge, and the cluster stays fully usable.
#[test]
fn cancelled_query_yields_partial_profile() {
    let cluster = cluster(2, 1); // force a queue: later submissions cancel while queued
    let q2 = plan(&cluster, 2);
    let full_stages = q2.stages.len();
    let serial_rows = cluster.run(&q2).unwrap().row_count();

    let mut saw_partial = false;
    for _ in 0..6 {
        let handles: Vec<QueryHandle> = (0..4).map(|_| cluster.submit(&q2).unwrap()).collect();
        for h in &handles {
            h.cancel();
        }
        for h in handles {
            let profile: QueryProfile = h.profile();
            assert!(
                profile.stages.len() <= full_stages,
                "profile grew more stages than the query has"
            );
            match h.wait() {
                Err(EngineError::Cancelled) => {
                    if profile.stages.len() < full_stages {
                        saw_partial = true;
                    }
                }
                Ok(r) => assert_eq!(r.row_count(), serial_rows),
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
    }
    assert!(saw_partial, "no cancellation ever truncated a profile");
    // Still answers correctly afterwards, with a complete profile.
    let after = cluster.run(&q2).unwrap();
    assert_eq!(after.row_count(), serial_rows);
    assert_eq!(
        after.profile.expect("profiling on").stages.len(),
        full_stages
    );
    cluster.shutdown();
}

/// With profiling disabled, results carry no profile and handles return an
/// empty one — the off switch really is off.
#[test]
fn profiling_off_leaves_no_profile() {
    let cluster = Cluster::start(ClusterConfig {
        profiling: false,
        ..ClusterConfig::quick(2)
    })
    .unwrap();
    cluster.load_tpch_db(TpchDb::generate(SF)).unwrap();
    let q6 = plan(&cluster, 6);
    let result = cluster.run(&q6).unwrap();
    assert!(result.profile.is_none());
    cluster.shutdown();
}
