//! Property-based tests (proptest) on the core data structures and
//! invariants: the wire format, partitioning, dates, LIKE matching,
//! bitmaps, sorting, and two-phase aggregation.

use proptest::prelude::*;

use hsqp::engine::expr::{col, lit, Expr, LikeMatcher};
use hsqp::engine::local::MorselDriver;
use hsqp::engine::ops::{aggregate, sort_table};
use hsqp::engine::plan::{AggFunc, AggSpec, SortKey};
use hsqp::engine::wire::{RowDeserializer, RowSerializer};
use hsqp::numa::Topology;
use hsqp::storage::placement::{chunk_split, crc32_i64, hash_partition};
use hsqp::storage::types::ymd_of_date;
use hsqp::storage::{date_from_ymd, Bitmap, Column, DataType, Field, Schema, Table, Value};

/// A random nullable mixed-type table.
fn arb_table() -> impl Strategy<Value = Table> {
    let row = (
        any::<i64>(),
        proptest::option::of(any::<f64>().prop_filter("finite", |f| f.is_finite())),
        proptest::option::of("[a-z0-9 ]{0,12}"),
        0i64..1000,
    );
    proptest::collection::vec(row, 0..60).prop_map(|rows| {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::nullable("f", DataType::Float64),
            Field::nullable("s", DataType::Utf8),
            Field::new("g", DataType::Int64),
        ]);
        let mut cols: Vec<Column> = schema
            .fields()
            .iter()
            .map(|f| Column::empty(f.dtype))
            .collect();
        for (k, f, s, g) in rows {
            cols[0].push_value(&Value::I64(k));
            cols[1].push_value(&f.map_or(Value::Null, Value::F64));
            cols[2].push_value(&s.map_or(Value::Null, Value::Str));
            cols[3].push_value(&Value::I64(g));
        }
        Table::new(schema, cols)
    })
}

proptest! {
    #[test]
    fn wire_roundtrip_is_lossless(t in arb_table()) {
        let ser = RowSerializer::new(t.schema());
        let de = RowDeserializer::new(t.schema());
        let mut buf = Vec::new();
        ser.serialize_range(&t, 0..t.rows(), &mut buf);
        let back = de.deserialize(&buf);
        prop_assert_eq!(back.rows(), t.rows());
        for r in 0..t.rows() {
            for c in 0..t.schema().len() {
                prop_assert_eq!(back.value(r, c), t.value(r, c));
            }
        }
    }

    #[test]
    fn wire_row_size_is_exact(t in arb_table()) {
        let ser = RowSerializer::new(t.schema());
        for r in 0..t.rows() {
            let mut buf = Vec::new();
            ser.serialize_row(&t, r, &mut buf);
            prop_assert_eq!(ser.row_size(&t, r), buf.len());
        }
    }

    #[test]
    fn crc_partitioning_is_stable_and_in_range(keys in proptest::collection::vec(any::<i64>(), 1..500), n in 1usize..16) {
        for &k in &keys {
            let b = crc32_i64(k) as usize % n;
            prop_assert!(b < n);
            prop_assert_eq!(b, crc32_i64(k) as usize % n);
        }
    }

    #[test]
    fn hash_partition_is_disjoint_and_complete(t in arb_table(), n in 1usize..6) {
        let parts = hash_partition(&t, 0, n);
        let total: usize = parts.iter().map(Table::rows).sum();
        prop_assert_eq!(total, t.rows());
        let mut all: Vec<i64> = parts
            .iter()
            .flat_map(|p| p.column(0).i64_values().to_vec())
            .collect();
        let mut orig: Vec<i64> = t.column(0).i64_values().to_vec();
        all.sort_unstable();
        orig.sort_unstable();
        prop_assert_eq!(all, orig);
    }

    #[test]
    fn chunk_split_preserves_order_and_rows(t in arb_table(), n in 1usize..6) {
        let parts = chunk_split(&t, n);
        prop_assert_eq!(parts.len(), n);
        let rebuilt: Vec<i64> = parts
            .iter()
            .flat_map(|p| p.column(0).i64_values().to_vec())
            .collect();
        prop_assert_eq!(rebuilt, t.column(0).i64_values().to_vec());
    }

    #[test]
    fn date_roundtrip(days in -200_000i64..200_000) {
        let (y, m, d) = ymd_of_date(days);
        prop_assert_eq!(date_from_ymd(y, m, d), days);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
    }

    #[test]
    fn like_matches_reference(text in "[a-c]{0,16}", pattern in "[a-c%]{0,8}") {
        // Reference: naive recursive matcher over % wildcards.
        fn reference(text: &str, pat: &str) -> bool {
            match pat.find('%') {
                None => text == pat,
                Some(i) => {
                    let (head, rest) = (&pat[..i], &pat[i + 1..]);
                    if !text.starts_with(head) {
                        return false;
                    }
                    let tail = &text[head.len()..];
                    (0..=tail.len()).any(|j| reference(&tail[j..], rest))
                }
            }
        }
        let m = LikeMatcher::new(&pattern);
        prop_assert_eq!(m.matches(&text), reference(&text, &pattern), "pattern {:?} text {:?}", pattern, text);
    }

    #[test]
    fn bitmap_behaves_like_vec_bool(bits in proptest::collection::vec(any::<bool>(), 0..200)) {
        let bm: Bitmap = bits.iter().copied().collect();
        prop_assert_eq!(bm.len(), bits.len());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(bm.get(i), b);
        }
        prop_assert_eq!(bm.count_set(), bits.iter().filter(|&&b| b).count());
    }

    #[test]
    fn sort_is_ordered_permutation(t in arb_table()) {
        let sorted = sort_table(&t, &[SortKey::asc("k"), SortKey::desc("g")], None);
        prop_assert_eq!(sorted.rows(), t.rows());
        let ks = sorted.column(0).i64_values();
        let gs = sorted.column(3).i64_values();
        for w in 1..sorted.rows() {
            prop_assert!(ks[w - 1] <= ks[w]);
            if ks[w - 1] == ks[w] {
                prop_assert!(gs[w - 1] >= gs[w]);
            }
        }
        let mut a: Vec<i64> = ks.to_vec();
        let mut b: Vec<i64> = t.column(0).i64_values().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn sort_limit_is_prefix(t in arb_table(), limit in 0usize..20) {
        let full = sort_table(&t, &[SortKey::asc("k")], None);
        let limited = sort_table(&t, &[SortKey::asc("k")], Some(limit));
        prop_assert_eq!(limited.rows(), limit.min(t.rows()));
        prop_assert_eq!(
            limited.column(0).i64_values(),
            &full.column(0).i64_values()[..limited.rows()]
        );
    }

    #[test]
    fn two_phase_aggregation_equals_single(t in arb_table(), split in 0usize..60) {
        use hsqp::engine::plan::AggPhase;
        let driver = MorselDriver::new(1, &Topology::uniform(1), 16, true);
        let aggs = vec![
            AggSpec::new(AggFunc::Sum, col("g"), "total"),
            AggSpec::new(AggFunc::Count, lit(1), "cnt"),
            AggSpec::new(AggFunc::Min, col("k"), "lo"),
            AggSpec::new(AggFunc::Max, col("k"), "hi"),
            AggSpec::new(AggFunc::Avg, col("g"), "mean"),
        ];
        let single = aggregate(&t, &[3], &aggs, AggPhase::Single, &driver, &[]);

        let split = split.min(t.rows());
        let left = t.gather(&(0..split).collect::<Vec<_>>());
        let right = t.gather(&(split..t.rows()).collect::<Vec<_>>());
        let mut partials = aggregate(&left, &[3], &aggs, AggPhase::Partial, &driver, &[]);
        partials.append(&aggregate(&right, &[3], &aggs, AggPhase::Partial, &driver, &[]));
        let gidx = partials.schema().index_of("g");
        let merged = aggregate(&partials, &[gidx], &aggs, AggPhase::Final, &driver, &[]);

        prop_assert_eq!(merged.rows(), single.rows());
        let key = |tab: &Table| {
            let mut rows: Vec<String> = (0..tab.rows())
                .map(|r| {
                    (0..tab.schema().len())
                        .map(|c| match tab.value(r, c) {
                            Value::F64(x) => format!("{x:.6}"),
                            v => v.to_string(),
                        })
                        .collect::<Vec<_>>()
                        .join("|")
                })
                .collect();
            rows.sort();
            rows
        };
        prop_assert_eq!(key(&merged), key(&single));
    }

    #[test]
    fn zipf_imbalance_at_least_one(count in 10usize..500, units in 1usize..32) {
        let g = hsqp::tpch::ZipfGenerator::new(50, 0.84);
        let keys = g.sample_many(count, 5);
        let f = hsqp::tpch::skew::imbalance(&keys, units);
        prop_assert!(f >= 1.0 - 1e-9);
    }
}

/// Build a deterministic random expression from a stream of seed words,
/// bounded in depth so generation always terminates.
fn build_expr(seed: &mut std::slice::Iter<'_, u64>, depth: u32) -> Expr {
    use hsqp::engine::expr::{ArithOp, CmpOp};
    fn next(seed: &mut std::slice::Iter<'_, u64>, m: u64) -> u64 {
        seed.next().copied().unwrap_or(7) % m
    }
    if depth == 0 {
        return match next(seed, 5) {
            0 => Expr::Col(format!("c{}", next(seed, 8))),
            1 => Expr::LitI64(next(seed, u64::MAX) as i64),
            2 => Expr::LitF64(next(seed, 1_000_000) as f64 / 64.0),
            3 => Expr::LitStr(format!("s{}", next(seed, 100))),
            _ => Expr::Param(next(seed, 6) as usize),
        };
    }
    fn sub(seed: &mut std::slice::Iter<'_, u64>, depth: u32) -> Box<Expr> {
        Box::new(build_expr(seed, depth - 1))
    }
    match next(seed, 12) {
        0 => Expr::Cmp(
            [
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
            ][next(seed, 6) as usize],
            sub(seed, depth),
            sub(seed, depth),
        ),
        1 => Expr::And(vec![
            build_expr(seed, depth - 1),
            build_expr(seed, depth - 1),
        ]),
        2 => Expr::Or(vec![
            build_expr(seed, depth - 1),
            build_expr(seed, depth - 1),
        ]),
        3 => Expr::Not(sub(seed, depth)),
        4 => Expr::Arith(
            [ArithOp::Add, ArithOp::Sub, ArithOp::Mul, ArithOp::Div][next(seed, 4) as usize],
            sub(seed, depth),
            sub(seed, depth),
        ),
        5 => Expr::Like(sub(seed, depth), format!("%p{}%", next(seed, 50))),
        6 => Expr::InStr(
            sub(seed, depth),
            (0..next(seed, 4)).map(|i| format!("o{i}")).collect(),
        ),
        7 => Expr::InI64(sub(seed, depth), (0..next(seed, 4) as i64).collect()),
        8 => Expr::Substr(
            sub(seed, depth),
            next(seed, 10) as usize,
            next(seed, 10) as usize,
        ),
        9 => Expr::ExtractYear(sub(seed, depth)),
        10 => Expr::Case(sub(seed, depth), sub(seed, depth), sub(seed, depth)),
        _ => Expr::IsNull(sub(seed, depth)),
    }
}

proptest! {
    #[test]
    fn plan_serialization_roundtrips_random_exprs(
        seed in proptest::collection::vec(any::<u64>(), 1..64),
        depth in 0u32..4,
    ) {
        use hsqp::engine::plan::{MapExpr, Plan};
        use hsqp::engine::queries::{Query, QueryStage, StageRole};
        use hsqp::engine::serial::{decode_query, encode_query};
        let expr = build_expr(&mut seed.iter(), depth);
        let plan = Plan::scan(hsqp::tpch::TpchTable::Lineitem)
            .filter(expr.clone())
            .map(vec![MapExpr::new("e", expr)])
            .gather();
        let q = Query {
            stages: vec![QueryStage { plan, role: StageRole::Result, estimated_rows: None, feedback_rows: None }],
            number: 0,
        };
        let bytes = encode_query(&q);
        prop_assert_eq!(decode_query(&bytes).unwrap(), q);
    }
}
