//! Differential tests for the compiled expression VM against the retained
//! AST tree walker — the correctness contract of the vectorized executor.
//!
//! Three layers:
//! 1. proptest: random well-typed expressions over random nullable
//!    mixed-dtype tables must evaluate identically (values, validity, and
//!    selection masks) under `ExprProgram` and `expr::eval`.
//! 2. deterministic kernel cases: one test per typed kernel family
//!    (comparisons, arithmetic, strings, dates, CASE, NULL handling)
//!    pinning the edges proptest may not hit every run — Decimal scale,
//!    division by zero, NaN ordering, NULL parameters, byte-wise SUBSTRING.
//! 3. end-to-end: all 22 TPC-H queries produce identical results on a
//!    cluster running the VM and one running the AST oracle, and every
//!    handwritten TPC-H plan actually compiles to at least one program
//!    (no silent fallback).

use std::collections::HashMap;
use std::ops::Range;

use proptest::prelude::*;

use hsqp::engine::cluster::{Cluster, ClusterConfig, ExprEngine};
use hsqp::engine::expr::{col, eval, lit, litf, lits, param, EvalVec, Expr, VecData};
use hsqp::engine::queries::{tpch_query, StageRole, ALL_QUERIES};
use hsqp::engine::vm::{compile_stage, ExprProgram};
use hsqp::storage::{date_from_ymd, Column, DataType, Field, Schema, Table, Value};
use hsqp::tpch::{schema as tpch_schema, TpchDb, TpchTable};

/// Parameter bindings shared by both engines: integer, float, string, and
/// NULL (the generator only uses $2 in string contexts and $3 in numeric
/// ones, mirroring how the planner binds scalar-subquery results).
fn test_params() -> Vec<Value> {
    vec![
        Value::I64(7),
        Value::F64(2.5),
        Value::Str("gj".into()),
        Value::Null,
    ]
}

/// The fixed schema every generated expression is typed against:
/// non-nullable Int64 and Date, nullable Decimal / Float64 / Int64 / Utf8.
fn test_schema() -> Schema {
    Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("d", DataType::Date),
        Field::nullable("dec", DataType::Decimal),
        Field::nullable("f", DataType::Float64),
        Field::nullable("ni", DataType::Int64),
        Field::nullable("s", DataType::Utf8),
    ])
}

type Row = (
    i64,
    u32,
    Option<i64>,
    Option<f64>,
    Option<i64>,
    Option<String>,
);

fn table_from_rows(rows: Vec<Row>) -> Table {
    let schema = test_schema();
    let mut cols: Vec<Column> = schema
        .fields()
        .iter()
        .map(|f| Column::empty(f.dtype))
        .collect();
    for (k, d, dec, f, ni, s) in rows {
        cols[0].push_value(&Value::I64(k));
        let date = date_from_ymd(1992 + i64::from(d % 7), 1 + d / 7 % 12, 1 + d / 84 % 28);
        cols[1].push_value(&Value::I64(date));
        cols[2].push_value(&dec.map_or(Value::Null, Value::I64));
        cols[3].push_value(&f.map_or(Value::Null, Value::F64));
        cols[4].push_value(&ni.map_or(Value::Null, Value::I64));
        cols[5].push_value(&s.map_or(Value::Null, Value::Str));
    }
    Table::new(schema, cols)
}

/// A random nullable table over all six dtypes. Integer magnitudes are kept
/// small (|v| ≤ 100) so depth-3 multiplication chains cannot overflow i64 —
/// overflow panics identically in both engines but would abort the test.
fn arb_table() -> impl Strategy<Value = Table> {
    let row = (
        -100i64..101,
        any::<u32>(),
        proptest::option::of(-100_000i64..100_001),
        proptest::option::of(any::<f64>().prop_filter("finite", |f| f.is_finite())),
        proptest::option::of(-100i64..101),
        proptest::option::of("[a-z0-9 ]{0,12}"),
    );
    proptest::collection::vec(row, 1..48).prop_map(table_from_rows)
}

/// Deterministic token stream driving the expression generator: proptest
/// supplies the randomness as a `Vec<u32>`; exhaustion yields zeros, which
/// always select a leaf, so generation terminates.
struct Toks {
    toks: Vec<u32>,
    pos: usize,
}

impl Toks {
    fn next(&mut self) -> u32 {
        let t = self.toks.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        t
    }
}

/// A random numeric-typed expression (Int64, Date, Decimal, or Float64
/// inputs; includes deliberate division by zero and NULL parameters).
fn gen_num(t: &mut Toks, depth: u32) -> Expr {
    let choice = if depth == 0 {
        t.next() % 7
    } else {
        t.next() % 11
    };
    match choice {
        0 => col("k"),
        1 => col("dec"),
        2 => col("f"),
        3 => col("ni"),
        4 => lit(i64::from(t.next() % 201) - 100),
        5 => litf((f64::from(t.next() % 201) - 100.0) / 8.0),
        6 => match t.next() % 3 {
            0 => param(0),
            1 => param(1),
            _ => param(3), // NULL parameter
        },
        7 => {
            let op = t.next() % 4;
            let a = gen_num(t, depth - 1);
            let b = gen_num(t, depth - 1);
            match op {
                0 => a.add(b),
                1 => a.sub(b),
                2 => a.mul(b),
                _ => a.div(b),
            }
        }
        8 => gen_num(t, depth - 1).div(lit(0)), // division by zero on purpose
        9 => {
            let c = gen_bool(t, depth - 1);
            c.case(gen_num(t, depth - 1), gen_num(t, depth - 1))
        }
        _ => col("d").year().sub(lit(1992)),
    }
}

/// A random string-typed expression.
fn gen_str(t: &mut Toks, depth: u32) -> Expr {
    const LITS: [&str; 5] = ["", "a", "foo", "xy z", "gj"];
    let choice = if depth == 0 {
        t.next() % 3
    } else {
        t.next() % 4
    };
    match choice {
        0 => col("s"),
        1 => lits(LITS[t.next() as usize % LITS.len()]),
        2 => param(2),
        _ => {
            let start = 1 + t.next() as usize % 4;
            let len = t.next() as usize % 5;
            gen_str(t, depth - 1).substr(start, len)
        }
    }
}

/// A random boolean-typed expression (the filter-predicate shape).
fn gen_bool(t: &mut Toks, depth: u32) -> Expr {
    const PATTERNS: [&str; 5] = ["%a%", "f%", "%z", "a_c", "%"];
    let cmp = |t: &mut Toks, a: Expr, b: Expr| match t.next() % 6 {
        0 => a.eq(b),
        1 => a.ne(b),
        2 => a.lt(b),
        3 => a.le(b),
        4 => a.gt(b),
        _ => a.ge(b),
    };
    if depth == 0 {
        let a = gen_num(t, 0);
        let b = gen_num(t, 0);
        return cmp(t, a, b);
    }
    match t.next() % 11 {
        0 | 1 => {
            let a = gen_num(t, depth - 1);
            let b = gen_num(t, depth - 1);
            cmp(t, a, b)
        }
        2 => {
            let a = gen_str(t, depth - 1);
            let b = gen_str(t, depth - 1);
            cmp(t, a, b)
        }
        3 => gen_bool(t, depth - 1).and(gen_bool(t, depth - 1)),
        4 => gen_bool(t, depth - 1).or(gen_bool(t, depth - 1)),
        5 => gen_bool(t, depth - 1).not(),
        6 => gen_str(t, depth - 1).like(PATTERNS[t.next() as usize % PATTERNS.len()]),
        7 => gen_str(t, depth - 1).in_str(&["foo", "a", ""]),
        8 => match t.next() % 3 {
            0 => col("k").in_i64(&[0, 1, 7, -3]),
            1 => col("ni").in_i64(&[2, -2, 50]),
            _ => col("d").year().in_i64(&[1993, 1995]),
        },
        9 => {
            if t.next().is_multiple_of(2) {
                gen_num(t, depth - 1).is_null()
            } else {
                gen_str(t, depth - 1).is_null()
            }
        }
        _ => {
            let x = gen_num(t, depth - 1);
            let lo = gen_num(t, depth - 1);
            let hi = gen_num(t, depth - 1);
            x.between(lo, hi)
        }
    }
}

/// f64 agreement: exact equality, identical bit pattern, or both NaN.
/// The VM mirrors the walker operation-for-operation, so results are
/// bitwise identical in practice; the NaN clause only guards against a
/// payload-differing NaN from the same arithmetic.
fn f64_eq(a: f64, b: f64) -> bool {
    a == b || a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan())
}

fn valid_at(v: &EvalVec, i: usize) -> bool {
    v.validity.as_ref().is_none_or(|b| b.get(i))
}

/// Both engines' outputs must have the same length, the same per-row
/// validity (semantically — `None` ≡ all-valid), and equal data on every
/// valid row.
fn assert_vecs_agree(oracle: &EvalVec, got: &EvalVec, e: &Expr) -> Result<(), TestCaseError> {
    prop_assert_eq!(oracle.len(), got.len(), "length mismatch for {:?}", e);
    for i in 0..oracle.len() {
        prop_assert_eq!(
            valid_at(oracle, i),
            valid_at(got, i),
            "validity mismatch at row {} for {:?}",
            i,
            e
        );
    }
    match (&oracle.data, &got.data) {
        (VecData::I64(a), VecData::I64(b)) => {
            for i in 0..a.len() {
                if valid_at(oracle, i) {
                    prop_assert_eq!(a[i], b[i], "i64 mismatch at row {} for {:?}", i, e);
                }
            }
        }
        (VecData::F64(a), VecData::F64(b)) => {
            for i in 0..a.len() {
                if valid_at(oracle, i) {
                    prop_assert!(
                        f64_eq(a[i], b[i]),
                        "f64 mismatch at row {}: {} vs {} for {:?}",
                        i,
                        a[i],
                        b[i],
                        e
                    );
                }
            }
        }
        (VecData::Str(a), VecData::Str(b)) => {
            for i in 0..a.len() {
                if valid_at(oracle, i) {
                    prop_assert_eq!(a.get(i), b.get(i), "str mismatch at row {} for {:?}", i, e);
                }
            }
        }
        (VecData::Bool(a), VecData::Bool(b)) => {
            prop_assert_eq!(a, b, "bool mismatch for {:?}", e);
        }
        _ => {
            return Err(TestCaseError::fail(format!(
                "output kind mismatch for {e:?}: oracle {:?} vs vm {:?}",
                oracle.data, got.data
            )))
        }
    }
    Ok(())
}

/// Compile `e`, bind it, and check agreement with the walker over the full
/// table and over a sub-range (validity bitmaps are range-relative — a
/// classic off-by-offset trap).
fn check_agree(e: &Expr, t: &Table) -> Result<(), TestCaseError> {
    let ps = test_params();
    let prog = match ExprProgram::compile(e, t.schema()) {
        Ok(p) => p,
        Err(err) => {
            return Err(TestCaseError::fail(format!(
                "well-typed expression failed to compile: {err} — {e:?}"
            )))
        }
    };
    let bound = prog
        .bind(t)
        .map_err(|err| TestCaseError::fail(format!("bind failed: {err} — {e:?}")))?;
    let ranges: [Range<usize>; 2] = [0..t.rows(), t.rows() / 3..t.rows()];
    for range in ranges {
        let oracle = eval(e, t, range.clone(), &ps);
        let got = bound.eval(t, range.clone(), &ps);
        assert_vecs_agree(&oracle, &got, e)?;
        if matches!(oracle.data, VecData::Bool(_)) {
            let mask = bound.eval_mask(t, range.clone(), &ps);
            let oracle_mask = eval(e, t, range, &ps).into_mask();
            prop_assert_eq!(mask, oracle_mask, "selection mask mismatch for {:?}", e);
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn random_numeric_expressions_agree(
        t in arb_table(),
        toks in proptest::collection::vec(any::<u32>(), 0..48),
        depth in 0u32..4,
    ) {
        let e = gen_num(&mut Toks { toks, pos: 0 }, depth);
        check_agree(&e, &t)?;
    }

    #[test]
    fn random_string_expressions_agree(
        t in arb_table(),
        toks in proptest::collection::vec(any::<u32>(), 0..48),
        depth in 0u32..4,
    ) {
        let e = gen_str(&mut Toks { toks, pos: 0 }, depth);
        check_agree(&e, &t)?;
    }

    #[test]
    fn random_predicates_agree(
        t in arb_table(),
        toks in proptest::collection::vec(any::<u32>(), 0..64),
        depth in 0u32..4,
    ) {
        let e = gen_bool(&mut Toks { toks, pos: 0 }, depth);
        check_agree(&e, &t)?;
    }

    #[test]
    fn folded_expressions_agree_with_unfolded(
        t in arb_table(),
        toks in proptest::collection::vec(any::<u32>(), 0..48),
        depth in 0u32..4,
    ) {
        // Constant folding is a planner rewrite; it must be invisible to
        // both engines.
        let e = gen_bool(&mut Toks { toks, pos: 0 }, depth);
        let folded = e.fold();
        let ps = test_params();
        let a = eval(&e, &t, 0..t.rows(), &ps);
        let b = eval(&folded, &t, 0..t.rows(), &ps);
        prop_assert_eq!(a.into_mask(), b.into_mask(), "fold changed {:?}", e);
        check_agree(&folded, &t)?;
    }
}

// ---------------------------------------------------------------------------
// Deterministic kernel cases
// ---------------------------------------------------------------------------

/// A small fixed table hitting the edges: NULLs in every nullable column,
/// zeros, negatives, Decimal cents needing scale conversion, empty and
/// multi-word strings.
fn kernel_table() -> Table {
    table_from_rows(vec![
        (0, 0, Some(0), Some(0.0), Some(0), Some(String::new())),
        (1, 1, Some(1), Some(-1.5), Some(-3), Some("a".into())),
        (
            -7,
            2,
            Some(-12345),
            Some(f64::MAX),
            None,
            Some("foo bar".into()),
        ),
        (100, 3, Some(99), None, Some(50), None),
        (-100, 4, None, Some(1e-9), Some(7), Some("xy z".into())),
        (42, 5, Some(100_000), Some(-0.0), Some(2), Some("gj".into())),
    ])
}

fn check(e: Expr) {
    check_agree(&e, &kernel_table()).unwrap_or_else(|err| panic!("{err:?}"));
}

#[test]
fn kernel_cmp_i64() {
    for e in [
        col("k").lt(col("ni")),
        col("k").eq(lit(42)),
        col("ni").ge(lit(0)),
        col("d").ne(col("k")),
    ] {
        check(e);
    }
}

#[test]
fn kernel_cmp_f64_including_nan() {
    // NaN never compares true under any operator — in either engine.
    let nan = litf(0.0).div(litf(0.0));
    for e in [
        col("f").lt(col("dec")),
        col("f").le(litf(0.0)),
        nan.clone().lt(litf(1.0)),
        nan.clone().ge(litf(1.0)),
        nan.clone().eq(nan.clone()),
        col("f").gt(nan),
    ] {
        check(e);
    }
}

#[test]
fn kernel_cmp_str() {
    for e in [
        col("s").eq(lits("foo bar")),
        col("s").lt(lits("b")),
        col("s").ge(lits("")),
    ] {
        check(e);
    }
}

#[test]
fn kernel_arith_i64_and_f64() {
    for e in [
        col("k").add(col("ni")),
        col("k").sub(lit(100)),
        col("ni").mul(lit(-3)),
        col("f").add(col("dec")),
        col("k").mul(col("f")),
        col("dec").sub(litf(0.005)),
    ] {
        check(e);
    }
}

#[test]
fn kernel_division_by_zero_is_float() {
    // Div always produces Float64: 1/0 → +inf, -1/0 → -inf, 0/0 → NaN,
    // identically in both engines (and identically when constant-folded).
    for e in [
        col("k").div(lit(0)),
        col("f").div(litf(0.0)),
        lit(1).div(lit(0)),
        litf(-1.0).div(litf(0.0)),
        col("k").div(col("ni")),
    ] {
        check(e);
    }
}

#[test]
fn kernel_decimal_scale() {
    // Decimal columns evaluate as f64 at cents/100 scale; the edge is a
    // value whose scaled form is not exactly representable (12345 cents).
    for e in [
        col("dec").eq(litf(123.45)),
        col("dec").eq(litf(-123.45)),
        col("dec").mul(lit(100)),
        col("dec").add(col("dec")),
        col("dec").gt(litf(999.99)),
    ] {
        check(e);
    }
}

#[test]
fn kernel_null_propagation() {
    for e in [
        col("ni").add(lit(1)),
        col("ni").mul(col("dec")),
        col("ni").is_null(),
        col("f").is_null(),
        col("s").is_null(),
        col("ni").eq(lit(50)), // NULL never matches a comparison
        param(3).add(col("k")),
        param(3).eq(lit(0)),
        param(3).is_null(),
        col("k").lt(lit(10)).case(col("ni"), col("dec")),
    ] {
        check(e);
    }
}

#[test]
fn kernel_string_ops() {
    for e in [
        col("s").like("%o%"),
        col("s").like("f__ b%"),
        col("s").in_str(&["foo bar", ""]),
        col("s").substr(2, 3).eq(lits("oo ")),
        col("s").substr(1, 0).eq(lits("")),
        col("s").substr(4, 50).like("%"),
        lits("héllo").substr(2, 1).eq(lits("")), // byte slicing mid-codepoint
        param(2).eq(col("s")),
    ] {
        check(e);
    }
}

#[test]
fn kernel_dates_and_case() {
    for e in [
        col("d").year().eq(lit(1994)),
        col("d").year().in_i64(&[1992, 1996]),
        col("d").ge(lit(date_from_ymd(1994, 6, 1))),
        col("k").gt(lit(0)).case(lit(1), lit(0)),
        col("f").is_null().case(litf(0.0), col("f")),
        col("s").like("%a%").case(col("k"), col("ni").mul(lit(2))),
    ] {
        check(e);
    }
}

#[test]
fn common_subexpressions_compile_to_tees() {
    let shared = col("k").add(col("ni"));
    let e = shared.clone().mul(shared.clone()).add(shared);
    let prog = ExprProgram::compile(&e, &test_schema()).unwrap();
    let listing = prog.listing().join("\n");
    assert!(listing.contains("tee"), "expected a tee in:\n{listing}");
    assert!(
        listing.contains("load_tmp"),
        "expected load_tmp in:\n{listing}"
    );
    // And the shared subtree is emitted exactly once.
    assert_eq!(listing.matches("arith_i64  Add").count(), 2, "{listing}");
    check(e);
}

#[test]
fn constant_subtrees_fold_at_compile_time() {
    let e = col("k").add(lit(2).mul(lit(3)));
    let prog = ExprProgram::compile(&e, &test_schema()).unwrap();
    let listing = prog.listing().join("\n");
    assert!(listing.contains("const_i64  6"), "{listing}");
    check(e);
}

#[test]
fn bind_rejects_schema_drift() {
    let e = col("k").add(lit(1));
    let prog = ExprProgram::compile(&e, &test_schema()).unwrap();
    // Same column name, different dtype: bind must refuse, not misread.
    let other = Table::new(
        Schema::new(vec![Field::new("k", DataType::Float64)]),
        vec![Column::empty(DataType::Float64)],
    );
    assert!(prog.bind(&other).is_err());
    // Missing column entirely.
    let empty = Table::new(Schema::new(vec![]), vec![]);
    assert!(prog.bind(&empty).is_err());
}

// ---------------------------------------------------------------------------
// End-to-end: the 22 TPC-H queries under VM vs AST oracle
// ---------------------------------------------------------------------------

/// Compare tables modulo row order and float rounding (same convention as
/// tests/tpch_correctness.rs).
fn assert_tables_equal(a: &Table, b: &Table, what: &str) {
    assert_eq!(a.rows(), b.rows(), "{what}: row counts differ");
    assert_eq!(a.schema().len(), b.schema().len(), "{what}: arity differs");
    let rows = |t: &Table| -> Vec<Vec<String>> {
        let mut rows: Vec<Vec<String>> = (0..t.rows())
            .map(|r| {
                (0..t.schema().len())
                    .map(|c| match t.value(r, c) {
                        Value::F64(x) => format!("{x:.2}"),
                        v => v.to_string(),
                    })
                    .collect()
            })
            .collect();
        rows.sort();
        rows
    };
    assert_eq!(rows(a), rows(b), "{what}: contents differ");
}

#[test]
fn all_tpch_queries_agree_with_ast_oracle() {
    let db = TpchDb::generate(0.002);

    let mut ast_cfg = ClusterConfig::quick(2);
    ast_cfg.expr_engine = ExprEngine::Ast;
    let vm_cfg = ClusterConfig::quick(2);
    assert_eq!(
        vm_cfg.expr_engine,
        ExprEngine::Compiled,
        "VM must be the default"
    );

    let run_all = |cfg: ClusterConfig, db: TpchDb| -> Vec<Table> {
        let cluster = Cluster::start(cfg).unwrap();
        cluster.load_tpch_db(db).unwrap();
        let results = ALL_QUERIES
            .iter()
            .map(|&n| {
                let q = tpch_query(n).unwrap();
                cluster
                    .run(&q)
                    .unwrap_or_else(|e| panic!("query {n} failed: {e}"))
                    .table
            })
            .collect();
        cluster.shutdown();
        results
    };

    let oracle = run_all(ast_cfg, db.clone());
    let vm = run_all(vm_cfg, db);
    for ((n, a), b) in ALL_QUERIES.iter().zip(&oracle).zip(&vm) {
        assert_tables_equal(a, b, &format!("Q{n} (AST oracle vs compiled VM)"));
    }
}

#[test]
fn every_tpch_plan_compiles_to_programs() {
    // No silent fallback: each handwritten TPC-H query must yield at least
    // one compiled program across its stages when compiled against the
    // base schemas (the same path Cluster::submit takes).
    let base = |t: TpchTable| -> Option<Schema> {
        Some(match t {
            TpchTable::Part => tpch_schema::part(),
            TpchTable::Supplier => tpch_schema::supplier(),
            TpchTable::Partsupp => tpch_schema::partsupp(),
            TpchTable::Customer => tpch_schema::customer(),
            TpchTable::Orders => tpch_schema::orders(),
            TpchTable::Lineitem => tpch_schema::lineitem(),
            TpchTable::Nation => tpch_schema::nation(),
            TpchTable::Region => tpch_schema::region(),
        })
    };
    for n in ALL_QUERIES {
        let q = tpch_query(n).unwrap();
        let mut temps: HashMap<String, Schema> = HashMap::new();
        let mut total = 0usize;
        for stage in &q.stages {
            let (compiled, schema) = compile_stage(&stage.plan, &base, &temps);
            total += compiled.program_count();
            if let StageRole::Materialize(name) = &stage.role {
                if let Some(s) = schema {
                    temps.insert(name.clone(), s);
                }
            }
        }
        assert!(
            total > 0,
            "Q{n} compiled zero programs — the VM is not engaged"
        );
    }
}

#[test]
fn q6_filter_compiles_and_annotates() {
    let base = |t: TpchTable| (t == TpchTable::Lineitem).then(tpch_schema::lineitem);
    let q = tpch_query(6).unwrap();
    let stage = &q.stages[0];
    let (compiled, _) = compile_stage(&stage.plan, &base, &HashMap::new());
    let has_filter = (0..64).any(|i| compiled.get(i).is_some_and(|p| p.filter.is_some()));
    assert!(has_filter, "Q6's scan filter must compile");
    let annotated = compiled.annotate(&stage.plan);
    assert!(
        annotated.contains("(p"),
        "explain must name programs:\n{annotated}"
    );
    let rendered = compiled.render(&stage.plan);
    assert!(
        rendered.contains("p0 ="),
        "render must list programs:\n{rendered}"
    );
}
