//! Offline shim for the `crossbeam` crate.
//!
//! Provides [`channel`]: an unbounded multi-producer multi-consumer
//! channel with `crossbeam-channel`'s API shape (cloneable `Sender` *and*
//! `Receiver`, `recv_timeout`, `try_recv`) built on a mutex-protected
//! queue and a condition variable. Disconnection semantics match the real
//! crate: `recv` fails once all senders are gone and the queue is drained;
//! `send` fails once all receivers are gone.

/// The `crossbeam-channel` facade: unbounded MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message, waking one blocked receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a message, blocking until one is available or all
        /// senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Dequeue a message, blocking for at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .shared
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
                if res.timed_out() && q.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Dequeue a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<i32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn timeout_expires() {
            let (_tx, rx) = unbounded::<i32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.recv().unwrap());
            }
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
