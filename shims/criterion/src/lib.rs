//! Offline shim for the `criterion` benchmark harness.
//!
//! Mirrors the subset of criterion's API this workspace's benches use —
//! benchmark groups, `bench_function`, `iter`, `iter_batched`, throughput
//! annotations, and the `criterion_group!`/`criterion_main!` macros — but
//! with a deliberately simple measurement loop: warm up briefly, then time
//! a fixed batch of iterations and report mean wall-clock time per
//! iteration (plus derived throughput). No statistics, plots, or saved
//! baselines.

use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Drives the measurement loop of one benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with a fresh `setup()` input per iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            hint_black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput annotation used to derive rates in the report.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Set the number of measured iterations for subsequent benches.
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(1);
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        // One warm-up pass, then the measured pass.
        let mut warm = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut warm);

        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("  {:>10.1} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:>10.1} Melem/s", n as f64 / per_iter / 1e6)
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<32} {:>12.3} µs/iter{}",
            self.name,
            id,
            per_iter * 1e6,
            rate
        );
        self.criterion.benches_run += 1;
    }

    /// End the group (matches criterion's API; prints nothing extra).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    benches_run: usize,
    default_sample_size: usize,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            50
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            name: name.to_string(),
            sample_size,
            throughput: None,
            criterion: self,
        }
    }

    /// Run a stand-alone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        g.finish();
    }
}

/// Collect benchmark functions into one runner, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        g.bench_function("sum", |b| b.iter(|| (0..10u64).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 8],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    #[test]
    fn harness_runs_benches() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        assert_eq!(c.benches_run, 2);
    }
}
