//! Offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()`/`read()`/`write()` return guards directly (a poisoned lock is
//! recovered rather than propagated, matching `parking_lot`'s semantics of
//! never poisoning), and [`Condvar::wait`] takes `&mut MutexGuard` instead
//! of consuming the guard.

use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutual-exclusion primitive that never poisons.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Holds an `Option` so [`Condvar::wait`] can
/// temporarily take the underlying std guard out and put it back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(recover(self.inner.lock())),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Default, Debug)]
pub struct Condvar {
    inner: sync::Condvar,
}

/// Result of a timed wait: whether the wait timed out.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(recover(self.inner.wait(g)));
    }

    /// Block until notified or until `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock that never poisons.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: recover(self.inner.read()),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: recover(self.inner.write()),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

fn recover<G, E: IntoInner<G>>(r: Result<G, E>) -> G {
    match r {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

trait IntoInner<G> {
    fn into_inner(self) -> G;
}

impl<G> IntoInner<G> for sync::PoisonError<G> {
    fn into_inner(self) -> G {
        sync::PoisonError::into_inner(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            *ready = true;
            cv.notify_all();
            drop(ready);
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        drop(ready);
        h.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
