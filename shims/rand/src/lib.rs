//! Offline shim for the `rand` crate (0.9 API surface).
//!
//! Provides a deterministic [`rngs::StdRng`] (xoshiro256++ seeded via
//! SplitMix64) plus the [`Rng`] / [`SeedableRng`] traits with the methods
//! this workspace uses: `random_range`, `random_bool`, and `random`.
//! Determinism for a given seed is the property the TPC-H generator
//! relies on; statistical quality is xoshiro-grade, ample for data
//! generation and skew sampling.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed, expanded via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        distr::unit_f64(self) < p
    }

    /// A sample of `T` from its standard distribution.
    fn random<T>(&mut self) -> T
    where
        T: distr::StandardUniform,
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Distribution plumbing for [`Rng`]'s generic methods.
pub mod distr {
    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A uniform sample in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64<R: RngCore>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Ranges that can produce a uniform sample of `T`.
    ///
    /// Implemented as blanket impls over [`SampleUniform`] so type
    /// inference unifies untyped integer literals in a range with the
    /// sample's use site, exactly as the real crate does.
    pub trait SampleRange<T> {
        /// Draw one uniform sample from the range.
        fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
    }

    /// Element types that support uniform sampling from a range.
    pub trait SampleUniform: Copy {
        /// Uniform sample in `[lo, hi)`.
        fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
        /// Uniform sample in `[lo, hi]`.
        fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
            T::sample_half_open(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
            T::sample_inclusive(rng, *self.start(), *self.end())
        }
    }

    /// Types with a standard distribution for [`super::Rng::random`].
    pub trait StandardUniform {
        /// Draw one sample from the type's standard distribution.
        fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
    }

    impl StandardUniform for f64 {
        fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
            unit_f64(rng)
        }
    }

    impl StandardUniform for u64 {
        fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl StandardUniform for bool {
        fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    // Uniform integer sampling over a span, by widening to u128 so the
    // multiply-shift reduction is unbiased enough for data generation.
    fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }

    macro_rules! impl_sample_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    assert!(lo < hi, "empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    (lo as i128 + uniform_below(rng, span) as i128) as $t
                }
                fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    assert!(lo <= hi, "empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
                }
            }
        )*};
    }

    impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl SampleUniform for f64 {
        fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
            assert!(lo < hi, "empty range");
            lo + unit_f64(rng) * (hi - lo)
        }
        fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
            Self::sample_half_open(rng, lo, hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0i64..1_000_000),
                b.random_range(0i64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(-50i64..=50);
            assert!((-50..=50).contains(&v));
            let u = rng.random_range(0usize..17);
            assert!(u < 17);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
