//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`/`prop_filter`, [`any`] for
//! primitives, range and simple-regex string strategies, tuple /
//! collection / option combinators, and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros. Each test runs a fixed
//! number of deterministically seeded cases (no shrinking): a failure
//! message reports the case number so a run can be reproduced — seeds
//! derive only from the test name and case index.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Strategy, TestCaseError};
}

/// Number of random cases each `proptest!` test executes.
pub const CASES: u32 = 64;

/// A failed property within a test case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic per-case RNG (SplitMix64 stream).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name and case index, so every run of a given test
    /// binary explores the same sequence of cases.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Keep only values satisfying `pred`; regenerates on rejection.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 candidates", self.reason);
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy for any value of a primitive type (see [`any`]).
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// The standard strategy for `T`: full-domain random values.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any {
        _marker: PhantomData,
    }
}

impl Strategy for Any<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut TestRng) -> i64 {
        // Mix full-domain values with small ones, which exercise more
        // interesting arithmetic paths than uniform 64-bit noise.
        match rng.next_u64() % 4 {
            0 => rng.next_u64() as i64,
            1 => (rng.below(2001) as i64) - 1000,
            2 => (rng.below(21) as i64) - 10,
            _ => (rng.below(200_000) as i64) - 100_000,
        }
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        match rng.next_u64() % 4 {
            // Raw bit patterns: covers subnormals, infinities, NaNs.
            0 => f64::from_bits(rng.next_u64()),
            1 => (rng.below(2_000_001) as f64 - 1_000_000.0) / 1000.0,
            2 => 0.0,
            _ => (rng.below(2001) as f64) - 1000.0,
        }
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(i8, i16, i32, u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

// A string literal is a strategy via a small regex subset:
// `[class]{m,n}` where `class` lists literal characters and `a-z` ranges.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_class_repeat(self);
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn parse_class_repeat(pattern: &str) -> (Vec<char>, usize, usize) {
    let inner = pattern
        .strip_prefix('[')
        .and_then(|r| r.split_once(']'))
        .unwrap_or_else(|| panic!("unsupported string strategy pattern {pattern:?}"));
    let (class, rest) = inner;
    let (lo, hi) = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .and_then(|r| r.split_once(','))
        .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
        .unwrap_or_else(|| panic!("unsupported repetition in pattern {pattern:?}"));
    let chars: Vec<char> = class.chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            for c in chars[i]..=chars[i + 2] {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty character class in {pattern:?}");
    (alphabet, lo, hi)
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of values from `element`, with `len` drawn from `length`.
    pub fn vec<S: Strategy>(element: S, length: Range<usize>) -> VecStrategy<S> {
        assert!(length.start < length.end, "empty length range");
        VecStrategy {
            element,
            len: length,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`: `None` about a quarter of the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wrap `inner`'s values in `Some`, mixing in `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Assert a boolean property inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $fmt:literal $(, $args:expr)* $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                concat!("assertion failed: {}: ", $fmt),
                stringify!($cond)
                $(, $args)*
            )));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $fmt:literal $(, $args:expr)* $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                concat!("assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n ", $fmt),
                stringify!($left),
                stringify!($right),
                l,
                r
                $(, $args)*
            )));
        }
    }};
}

/// Define property tests: each `fn` runs [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($( #[test] fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                for case in 0..$crate::CASES {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(
                        let $arg = $crate::Strategy::generate(&($strategy), &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property failed at case {case}/{}: {e}", $crate::CASES);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn string_pattern_parses_ranges() {
        let mut rng = super::TestRng::for_case("string_pattern", 0);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c%]{0,8}", &mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '%')));
        }
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in -50i64..50, n in 1usize..16) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..16).contains(&n));
        }

        #[test]
        fn vec_and_option_compose(
            v in super::collection::vec(super::option::of(any::<i64>()), 0..10)
        ) {
            prop_assert!(v.len() < 10);
        }

        #[test]
        fn filter_and_map_apply(
            f in any::<f64>().prop_filter("finite", |f| f.is_finite()),
            s in (0i64..100).prop_map(|x| x * 2)
        ) {
            prop_assert!(f.is_finite());
            prop_assert_eq!(s % 2, 0, "mapped value {} must be even", s);
        }
    }
}
