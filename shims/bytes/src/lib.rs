//! Offline shim for the `bytes` crate.
//!
//! Implements the subset of the real crate's API that this workspace uses:
//! [`Bytes`] as a cheaply cloneable, reference-counted, sliceable view of
//! an immutable byte buffer. Cloning and slicing never copy the data —
//! only the `Arc` refcount moves — which is exactly the "retain" behaviour
//! the exchange operators rely on for zero-copy broadcast.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable slice of a shared, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap a static byte slice (copies once into shared storage; the real
    /// crate borrows, but the observable semantics are identical).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Copy a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Length of this view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether this view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of this buffer. Shares storage with `self`; no copy.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "slice {begin}..{end} out of range for Bytes of length {len}"
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copy this view out into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s, &[2u8, 3, 4][..]);
        assert_eq!(s.len(), 3);
        let s2 = s.slice(1..);
        assert_eq!(s2, &[3u8, 4][..]);
    }

    #[test]
    fn clone_is_equal() {
        let b = Bytes::from_static(b"abc");
        assert_eq!(b.clone(), b);
        assert_eq!(b.to_vec(), vec![b'a', b'b', b'c']);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slice_panics() {
        Bytes::from(vec![1u8]).slice(0..2);
    }
}
