#!/usr/bin/env python3
"""Fail if any of the given files is not well-formed JSON.

Usage: validate_json.py FILE [FILE ...]
"""

import json
import sys


def main(paths):
    if not paths:
        raise SystemExit("usage: validate_json.py FILE [FILE ...]")
    for path in paths:
        try:
            with open(path) as f:
                json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            raise SystemExit(f"{path}: {e}")
        print(f"{path}: ok")


if __name__ == "__main__":
    main(sys.argv[1:])
