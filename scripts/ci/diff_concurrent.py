#!/usr/bin/env python3
"""Check a multi-client throughput report against the serial reference.

Usage: diff_concurrent.py SERIAL.json CONCURRENT.json

The concurrent run must cover every query the serial run covered, report
zero failures, and agree on every row count; on success the throughput
digest is printed for the job log.
"""

import json
import sys


def main(argv):
    if len(argv) != 2:
        raise SystemExit("usage: diff_concurrent.py SERIAL.json CONCURRENT.json")
    with open(argv[0]) as f:
        serial = json.load(f)
    with open(argv[1]) as f:
        conc = json.load(f)
    rows = lambda rep: {q["query"]: q["rows"] for q in rep["queries"] if "rows" in q}
    serial_rows, conc_rows = rows(serial), rows(conc)
    missing = sorted(set(serial_rows) - set(conc_rows))
    if missing:
        raise SystemExit(f"concurrent run did not cover: {missing}")
    if conc.get("failures", 1) != 0:
        raise SystemExit(f"concurrent run reported {conc['failures']} failures")
    mismatches = [
        (q, serial_rows[q], r)
        for q, r in sorted(conc_rows.items())
        if serial_rows.get(q) != r
    ]
    if mismatches:
        raise SystemExit(
            f"row-count diffs vs serial (query, serial, concurrent): {mismatches}"
        )
    tp = conc["throughput"]
    print(
        f"throughput: {tp['queries_per_hour']:.0f} queries/hour "
        f"over {tp['total_queries']} executions "
        f"(p50 {tp['latency_ms']['p50']:.1f} ms, p99 {tp['latency_ms']['p99']:.1f} ms)"
    )


if __name__ == "__main__":
    main(sys.argv[1:])
