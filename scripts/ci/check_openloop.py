#!/usr/bin/env python3
"""Validate an `hsqp --open-loop` report ("hsqp-openloop-v1").

Usage: check_openloop.py REPORT.json [--reference SERIAL.json]
                         [--ratio-min X --ratio-max Y] [--min-completed N]

Always enforced: the schema tag, zero failed arrivals, zero recorded
drift failures, and at least --min-completed completions (default 1).
With --reference, every query's row count must equal the serial
`hsqp --output` run — concurrent serving must not change answers.
With --ratio-min/--ratio-max the report must contain exactly two
tenants with distinct weights, and the completed-count ratio of the
heavier over the lighter tenant must land inside [min, max]. Under a
saturating offered load the deficit round-robin scheduler serves
tenants in proportion to their weights, so for 4:1 weights the ratio
sits near 4; the band absorbs edge effects at the window boundaries.
"""

import argparse
import json


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("report")
    ap.add_argument("--reference", help="serial hsqp --output report (row oracle)")
    ap.add_argument("--ratio-min", type=float)
    ap.add_argument("--ratio-max", type=float)
    ap.add_argument("--min-completed", type=int, default=1)
    args = ap.parse_args()

    rep = load(args.report)
    errors = []

    if rep.get("schema") != "hsqp-openloop-v1":
        errors.append(f"unexpected schema tag: {rep.get('schema')!r}")
    if rep.get("failed", -1) != 0:
        errors.append(f"{rep.get('failed')} arrivals failed (expected 0)")
    if rep.get("failures", -1) != 0:
        errors.append(f"report recorded {rep.get('failures')} drift failures")
    completed = rep.get("completed", 0)
    if completed < args.min_completed:
        errors.append(
            f"only {completed} completions (need >= {args.min_completed})"
        )

    if args.reference:
        ref = {
            q["query"]: q["rows"]
            for q in load(args.reference)["queries"]
            if "rows" in q
        }
        for q in rep.get("queries", []):
            n, rows = q["query"], q["rows"]
            if n not in ref:
                errors.append(f"Q{n}: not present in serial reference")
            elif ref[n] != rows:
                errors.append(
                    f"Q{n}: rows diverged from serial run "
                    f"(serial={ref[n]} open-loop={rows})"
                )
            else:
                print(f"Q{n}: rows={rows} x{q.get('executions', '?')} (matches serial)")

    if (args.ratio_min is None) != (args.ratio_max is None):
        ap.error("--ratio-min and --ratio-max must be given together")
    if args.ratio_min is not None:
        tenants = rep.get("tenants", [])
        if len(tenants) != 2 or tenants[0]["weight"] == tenants[1]["weight"]:
            errors.append(
                "ratio gate needs exactly two tenants with distinct weights, "
                f"got {[(t['tenant'], t['weight']) for t in tenants]}"
            )
        else:
            heavy, light = sorted(tenants, key=lambda t: -t["weight"])
            print(
                f"tenants: {heavy['tenant']} (w{heavy['weight']}) completed "
                f"{heavy['completed']}, {light['tenant']} (w{light['weight']}) "
                f"completed {light['completed']}"
            )
            if light["completed"] == 0:
                errors.append(
                    f"lighter tenant {light['tenant']} completed nothing — "
                    "starved or load too low"
                )
            else:
                ratio = heavy["completed"] / light["completed"]
                print(f"completed ratio {ratio:.2f} (band [{args.ratio_min}, {args.ratio_max}])")
                if not (args.ratio_min <= ratio <= args.ratio_max):
                    errors.append(
                        f"completed ratio {ratio:.2f} outside "
                        f"[{args.ratio_min}, {args.ratio_max}]"
                    )

    if errors:
        for e in errors:
            print(f"FAIL: {e}")
        raise SystemExit(1)
    print(f"{args.report}: ok ({completed} completed)")


if __name__ == "__main__":
    main()
