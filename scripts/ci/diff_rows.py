#!/usr/bin/env python3
"""Diff per-query row counts between two `hsqp --output` reports.

Usage: diff_rows.py REFERENCE.json CANDIDATE.json REF_LABEL CAND_LABEL [--full-22]

Every query present in the candidate must report the same row count as the
reference; with --full-22 the candidate must additionally cover all 22
TPC-H queries. Any mismatch is a hard failure — row counts are
deterministic, so drift means an engine changed its answer.
"""

import json
import sys


def rows(path):
    with open(path) as f:
        report = json.load(f)
    return {q["query"]: q["rows"] for q in report["queries"] if "rows" in q}


def main(argv):
    args = [a for a in argv if a != "--full-22"]
    full = "--full-22" in argv
    if len(args) != 4:
        raise SystemExit(
            "usage: diff_rows.py REFERENCE.json CANDIDATE.json REF_LABEL CAND_LABEL [--full-22]"
        )
    ref_path, cand_path, ref_label, cand_label = args
    ref, cand = rows(ref_path), rows(cand_path)
    if full:
        missing = sorted(set(range(1, 23)) - set(cand))
        if missing:
            raise SystemExit(
                f"{cand_label} did not cover the full 22-query set; missing: {missing}"
            )
    mismatches = [
        (q, ref.get(q), r) for q, r in sorted(cand.items()) if ref.get(q) != r
    ]
    for q, r in sorted(cand.items()):
        print(f"Q{q}: {ref_label}={ref.get(q)} {cand_label}={r}")
    if mismatches:
        raise SystemExit(
            f"row-count mismatches (query, {ref_label}, {cand_label}): {mismatches}"
        )


if __name__ == "__main__":
    main(sys.argv[1:])
