//! Working directly with the network substrate (§2): tune TCP, compare it
//! with RDMA verbs, and watch the CPU-overhead gap the paper measured
//! (100–190 % of a core for TCP vs ~4 % for RDMA).
//!
//! ```bash
//! cargo run --release --example network_tuning
//! ```

use std::sync::Arc;
use std::time::Instant;

use hsqp::net::{Fabric, FabricConfig, NodeId, RdmaConfig, RdmaNetwork, TcpConfig, TcpNetwork};

const SIZE: usize = 512 * 1024;
const MESSAGES: usize = 100;

fn main() {
    let configs = [
        ("TCP w/o offload", Some(TcpConfig::without_offload())),
        ("default TCP", Some(TcpConfig::default_tcp())),
        ("TCP 64k MTU", Some(TcpConfig::connected_64k())),
        ("TCP tuned", Some(TcpConfig::tuned())),
        ("RDMA", None),
    ];
    println!("one stream, {MESSAGES} x 512 KB messages over simulated 4xQDR:\n");
    for (name, tcp) in configs {
        let fabric = Arc::new(Fabric::new(2, FabricConfig::qdr()));
        let start = Instant::now();
        match tcp {
            Some(cfg) => {
                let net = TcpNetwork::new(Arc::clone(&fabric), cfg);
                let a = net.endpoint(NodeId(0));
                let b = net.endpoint(NodeId(1));
                let payload = vec![1u8; SIZE];
                let h = std::thread::spawn(move || {
                    for _ in 0..MESSAGES {
                        b.recv();
                    }
                });
                for _ in 0..MESSAGES {
                    a.send(NodeId(1), &payload);
                }
                h.join().unwrap();
            }
            None => {
                let net = RdmaNetwork::new(Arc::clone(&fabric), RdmaConfig::default());
                let a = net.endpoint(NodeId(0));
                let b = net.endpoint(NodeId(1));
                b.post_recvs(MESSAGES as u64);
                let region = a.register(vec![1u8; SIZE]);
                let h = std::thread::spawn(move || {
                    for _ in 0..MESSAGES {
                        b.wait_completion();
                    }
                });
                for _ in 0..MESSAGES {
                    a.post_send_bytes(NodeId(1), region.bytes().clone());
                }
                h.join().unwrap();
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        let gbps = (MESSAGES * SIZE) as f64 / elapsed / 1e9;
        // CPU utilization of the receiver relative to the transfer time —
        // the paper's headline TCP-vs-RDMA number.
        let recv_cpu = fabric.stats(NodeId(1)).recv_cpu().as_secs_f64();
        println!(
            "{name:>18}: {gbps:>5.2} GB/s, receiver CPU {:>5.1}% of one core",
            recv_cpu / elapsed * 100.0,
        );
    }
}
