#!/usr/bin/env bash
# Run TPC-H on a real out-of-process hsqp cluster over loopback TCP.
#
# Spawns NODES `hsqp-node` server processes on OS-assigned ports, points
# the `hsqp` coordinator at them, and tears everything down afterwards.
# Any extra arguments are passed through to the coordinator:
#
#   examples/process_cluster.sh                       # 4 nodes, SF 0.01, all 22
#   NODES=2 SF=0.1 examples/process_cluster.sh --queries 1,3,6 --metrics
#   examples/process_cluster.sh --clients 4 --rounds 2
set -euo pipefail
cd "$(dirname "$0")/.."

NODES=${NODES:-4}
SF=${SF:-0.01}

cargo build --release --bin hsqp --bin hsqp-node

logdir=$(mktemp -d)
pids=()
cleanup() {
    kill "${pids[@]}" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$logdir"
}
trap cleanup EXIT

addrs=()
for i in $(seq 0 $((NODES - 1))); do
    ./target/release/hsqp-node --listen 127.0.0.1:0 \
        > "$logdir/node$i.out" 2> "$logdir/node$i.err" &
    pids+=($!)
done
for i in $(seq 0 $((NODES - 1))); do
    for _ in $(seq 1 100); do
        grep -q "listening on" "$logdir/node$i.out" 2>/dev/null && break
        sleep 0.1
    done
    addrs+=("$(awk '{print $NF}' "$logdir/node$i.out")")
done

cluster=$(IFS=,; echo "${addrs[*]}")
echo "cluster: $cluster" >&2
./target/release/hsqp --cluster "$cluster" --sf "$SF" "$@"
