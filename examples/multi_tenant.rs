//! Multi-tenant serving quickstart: tenant-tagged submission, weighted
//! fair scheduling, admission caps, deadlines, and per-tenant metrics.
//!
//! Two tenants share a cluster with one dispatcher slot. "gold" has 4x
//! the scheduling weight of "silver"; a backlog from both drains in a
//! ~4:1 ratio. A third, capped tenant shows fast admission rejection,
//! and a deadline shows morsel-bounded cancellation.
//!
//! ```bash
//! cargo run --release --example multi_tenant
//! ```

use std::time::{Duration, Instant};

use hsqp::engine::error::EngineError;
use hsqp::engine::queries::tpch_logical;
use hsqp::engine::serve::{SubmitOptions, TenantConfig};
use hsqp::engine::session::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::builder()
        .nodes(2)
        .max_concurrent(1) // single slot: scheduling order is visible
        .tenant("gold", TenantConfig::weighted(4))
        .tenant("silver", TenantConfig::weighted(1))
        .tenant(
            "capped",
            TenantConfig {
                weight: 1,
                max_queued: Some(2),
                max_concurrent: Some(1),
            },
        )
        .tpch(0.01)
        .build()?;

    // --- weighted fairness: enqueue a mixed backlog, watch the ratio ---
    let plug = session.submit_as("gold", &tpch_logical(9)?)?; // holds the slot
    let queued: Vec<_> = (0..30)
        .map(|i| {
            let tenant = if i % 2 == 0 { "gold" } else { "silver" };
            session
                .submit_as(tenant, tpch_logical(6).expect("Q6 builds"))
                .map(|h| (tenant, h))
        })
        .collect::<Result<_, EngineError>>()?;
    plug.wait()?;
    for (tenant, handle) in queued {
        let r = handle.wait()?;
        println!(
            "{tenant:<6} queued {:>7.2} ms, ran in {:>7.2} ms",
            r.queue_wait.as_secs_f64() * 1e3,
            (r.elapsed - r.queue_wait).as_secs_f64() * 1e3,
        );
    }

    // --- admission caps: the third over-cap submission bounces fast ---
    let plug = session.submit_as("gold", &tpch_logical(9)?)?;
    let mut kept = Vec::new();
    for i in 0..3 {
        match session.submit_as("capped", &tpch_logical(6)?) {
            Ok(h) => kept.push(h),
            Err(EngineError::Admission(msg)) => {
                println!("submission {i} rejected: {msg}")
            }
            Err(e) => return Err(e.into()),
        }
    }
    plug.wait()?;
    for h in kept {
        h.wait()?;
    }

    // --- deadlines: cancelled cooperatively, morsel-bounded ---
    let started = Instant::now();
    let doomed = session.submit_with(
        &tpch_logical(9)?,
        &SubmitOptions::tenant("silver").with_deadline(Duration::from_millis(5)),
    )?;
    match doomed.wait() {
        Err(EngineError::DeadlineExceeded) => println!(
            "deadline query stopped after {:.2} ms",
            started.elapsed().as_secs_f64() * 1e3
        ),
        other => println!(
            "unexpectedly fast machine: {:?}",
            other.map(|r| r.row_count())
        ),
    }

    // --- per-tenant rollups from the shared metrics registry ---
    for m in session.tenant_metrics() {
        println!(
            "{:<6} submitted {:>3}  completed {:>3}  cancelled {}  rejected {}  \
             {} bytes shuffled",
            m.tenant.to_string(),
            m.submitted,
            m.completed,
            m.cancelled,
            m.rejected,
            m.bytes_shuffled,
        );
    }
    Ok(())
}
