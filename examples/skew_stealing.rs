//! Attribute-value skew and work stealing (§3.1): the same Zipf-skewed
//! shuffle under hybrid parallelism (n parallel units, intra-server work
//! stealing) and under the classic exchange model (n·t units, static
//! ownership).
//!
//! ```bash
//! cargo run --release --example skew_stealing
//! ```

use hsqp::engine::cluster::{Cluster, ClusterConfig, EngineKind, Transport};
use hsqp::engine::expr::lit;
use hsqp::engine::plan::{AggSpec, Plan};
use hsqp::engine::AggFunc;
use hsqp::storage::placement::chunk_split;
use hsqp::storage::{Column, DataType, Field, Schema, Table};
use hsqp::tpch::{skew::imbalance, TpchDb, TpchTable, ZipfGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let zipf = ZipfGenerator::new(10_000, 0.84);
    let keys = zipf.sample_many(300_000, 17);

    // The paper's argument in one table: the more parallel units, the worse
    // a Zipf-skewed key distribution overloads the busiest one.
    println!("hash-partition overload factor (Zipf z = 0.84):");
    for units in [3usize, 6, 48, 240] {
        println!(
            "  {units:>4} units: {:.2}x fair share",
            imbalance(&keys, units)
        );
    }
    println!();

    // Measure it: a skewed repartition + aggregation, hybrid vs classic.
    let schema = Schema::new(vec![
        Field::new("l_orderkey", DataType::Int64),
        Field::new("l_quantity", DataType::Int64),
    ]);
    let skewed = Table::new(
        schema,
        vec![
            Column::I64(keys.iter().map(|&k| k as i64).collect(), None),
            Column::I64(vec![1; keys.len()], None),
        ],
    );
    let plan = Plan::scan(TpchTable::Lineitem)
        .repartition(&["l_orderkey"])
        .aggregate(
            &["l_orderkey"],
            vec![AggSpec::new(AggFunc::Count, lit(1), "cnt")],
        )
        .aggregate(&[], vec![AggSpec::new(AggFunc::Count, lit(1), "groups")])
        .gather();

    for engine in [EngineKind::Hybrid, EngineKind::Classic] {
        let cfg = ClusterConfig {
            engine,
            workers_per_node: 4,
            transport: Transport::rdma_unscheduled(),
            ..ClusterConfig::quick(3)
        };
        let cluster = Cluster::start(cfg)?;
        cluster.load_tpch_db(TpchDb::generate(0.001))?;
        cluster.load_table(TpchTable::Lineitem, chunk_split(&skewed, 3))?;
        let r = cluster.run_plan(&plan)?;
        // Input per parallel unit: whole servers under hybrid parallelism
        // (any worker consumes any message), workers under classic exchange
        // (static bucket ownership) — the Zipf-heavy bucket lands on one.
        let mut loads: Vec<u64> = Vec::new();
        for node in 0..3u16 {
            let per_worker = cluster.node_ctx(node).consume_loads.lock().clone();
            match engine {
                EngineKind::Hybrid => loads.push(per_worker.iter().sum()),
                EngineKind::Classic => loads.extend(per_worker),
            }
        }
        let fair = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
        let max = *loads.iter().max().unwrap() as f64;
        println!(
            "{engine:?}: {:.1} ms, {} units, busiest got {:.2}x its fair share",
            r.elapsed.as_secs_f64() * 1e3,
            loads.len(),
            max / fair,
        );
        cluster.shutdown();
    }
    Ok(())
}
