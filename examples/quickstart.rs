//! Quickstart: start a simulated cluster, load TPC-H, run a query.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use hsqp::engine::cluster::{Cluster, ClusterConfig};
use hsqp::engine::queries::tpch_query;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 3-server cluster over simulated 4xQDR InfiniBand with the paper's
    // engine: RDMA + round-robin network scheduling, hybrid parallelism.
    let cluster = Cluster::start(ClusterConfig::quick(3))?;

    // Generate TPC-H at scale factor 0.01 and distribute chunks to the
    // servers exactly as dbgen would (no redistribution, §4.1).
    cluster.load_tpch(0.01)?;

    // TPC-H Q1: the pricing summary report.
    let query = tpch_query(1)?;
    let result = cluster.run(&query)?;

    println!(
        "Q1: {} groups in {:.1} ms ({} bytes shuffled over the fabric)",
        result.row_count(),
        result.elapsed.as_secs_f64() * 1e3,
        result.bytes_shuffled,
    );
    for row in 0..result.row_count() {
        let t = &result.table;
        println!(
            "  {} {}  qty={:<12} count={}",
            t.value(row, 0),
            t.value(row, 1),
            t.value(row, t.schema().index_of("sum_qty")),
            t.value(row, t.schema().index_of("count_order")),
        );
    }

    cluster.shutdown();
    Ok(())
}
