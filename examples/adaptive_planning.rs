//! Adaptive planning: a repeated query gets a better plan on its second
//! run.
//!
//! The CTE below filters lineitem with two *correlated* date predicates:
//! receipts trail shipments by at most 30 days, so almost every row that
//! ships in the window also arrives before the receipt cutoff. The
//! planner's independence assumption multiplies the two selectivities and
//! overestimates the CTE several-fold — enough to keep its
//! materialization partitioned. In [`StatsMode::Feedback`] the first
//! execution records the observed cardinality in the session's
//! [`FeedbackCache`]; planning the same query again corrects the estimate
//! (the `fb` annotation below), and the now-small CTE is broadcast
//! instead, eliding the downstream exchange.
//!
//! ```bash
//! cargo run --release --example adaptive_planning
//! ```

use hsqp::engine::expr::{col, lit};
use hsqp::engine::logical::{LogicalPlan, LogicalQuery};
use hsqp::engine::plan::{AggFunc, AggSpec, JoinKind};
use hsqp::engine::session::Session;
use hsqp::engine::stats::StatsMode;
use hsqp::storage::date_from_ymd;
use hsqp::tpch::TpchTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::builder()
        .nodes(4)
        .tpch(0.01)
        .stats_mode(StatsMode::Feedback)
        .build()?;

    // Shipped in June 1998 AND received before July 8, 1998. Independence
    // says ~sel(ship) x sel(receipt) of lineitem; in reality the second
    // predicate is nearly implied by the first, so the true result is far
    // smaller than the static estimate.
    let recent = LogicalPlan::scan(TpchTable::Lineitem)
        .filter(
            col("l_shipdate")
                .ge(lit(date_from_ymd(1998, 6, 1)))
                .and(col("l_receiptdate").lt(lit(date_from_ymd(1998, 7, 8)))),
        )
        .project(&["l_orderkey", "l_quantity"]);
    let per_priority = LogicalPlan::scan(TpchTable::Orders)
        .join(
            LogicalPlan::from_cte("recent"),
            &["o_orderkey"],
            &["l_orderkey"],
            JoinKind::Inner,
        )
        .aggregate(
            &["o_orderpriority"],
            vec![AggSpec::new(AggFunc::Sum, col("l_quantity"), "qty")],
        );
    let query = LogicalQuery::cte("recent", recent).then(per_priority);

    let show = |label: &str| -> Result<(), Box<dyn std::error::Error>> {
        let (physical, notes) = session.planner().plan_query_explained(&query)?;
        println!("{label}:");
        for (i, stage) in physical.stages.iter().enumerate() {
            let est = match (stage.estimated_rows, stage.feedback_rows) {
                (Some(e), Some(fb)) => format!("  [est ~{e:.0} rows · fb {fb:.0} rows]"),
                (Some(e), None) => format!("  [est ~{e:.0} rows]"),
                (None, _) => String::new(),
            };
            println!(
                "  stage {}/{} — {}{est}",
                i + 1,
                physical.stages.len(),
                stage.role.label()
            );
            for note in &notes[i] {
                println!("    decision: {note}");
            }
        }
        Ok(())
    };

    show("first run plans from static estimates")?;
    let first = session.run(&query)?;
    println!(
        "  -> {} rows in {:.1} ms, {} bytes shuffled\n",
        first.row_count(),
        first.elapsed.as_secs_f64() * 1e3,
        first.bytes_shuffled,
    );

    // The execution above fed every stage's observed cardinality back into
    // the session's cache; the same query now plans from actuals.
    show("second run corrects the CTE estimate from feedback")?;
    let second = session.run(&query)?;
    println!(
        "  -> {} rows in {:.1} ms, {} bytes shuffled",
        second.row_count(),
        second.elapsed.as_secs_f64() * 1e3,
        second.bytes_shuffled,
    );
    assert_eq!(
        first.row_count(),
        second.row_count(),
        "answers must not change"
    );
    println!(
        "\nsame answer, {} feedback entries recorded",
        session.feedback_cache().len()
    );

    session.shutdown();
    Ok(())
}
