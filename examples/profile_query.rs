//! Profiling quickstart: submit a query, read its execution profile, and
//! export a Chrome trace.
//!
//! The engine profiles every query by default (span-based, lock-free
//! atomics — cheap enough to leave on): per stage × node × operator wall
//! times, row counts, bytes shuffled, and the network-wait vs compute
//! split at exchange boundaries. This example shows the three ways to
//! consume a profile:
//!
//! 1. `QueryProfile::render()` — the `EXPLAIN ANALYZE` tree,
//! 2. the structured API (walk stages/operators programmatically),
//! 3. `chrome_trace()` — a trace-event JSON for chrome://tracing/Perfetto.
//!
//! ```bash
//! cargo run --release --example profile_query
//! ```

use hsqp::engine::profile::chrome_trace;
use hsqp::engine::queries::tpch_logical;
use hsqp::engine::session::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::builder().nodes(4).tpch(0.01).build()?;

    // --- 1. EXPLAIN ANALYZE: the plan tree with actuals ------------------
    let handle = session.submit(&tpch_logical(3)?)?;
    let result = handle.wait()?;
    let profile = result.profile.as_ref().expect("profiling is on by default");
    println!("=== Q3 EXPLAIN ANALYZE ===");
    print!("{}", profile.render());

    // --- 2. the structured API: where did the time go? -------------------
    println!("\n=== Q3 by the numbers ===");
    println!("bytes shuffled: {}", profile.bytes_shuffled());
    println!(
        "network wait:   {:.2} ms of {:.2} ms total",
        profile.net_wait().as_secs_f64() * 1e3,
        result.elapsed.as_secs_f64() * 1e3,
    );
    for (i, stage) in profile.stages.iter().enumerate() {
        for op in stage.ops.iter().filter(|op| op.is_exchange()) {
            println!(
                "stage {} {:<40} {:>9} rows  {:>10} bytes",
                i + 1,
                op.label,
                op.rows_out(),
                op.bytes_sent(),
            );
        }
    }

    // --- 3. Chrome trace export: one lane per node -----------------------
    // Collect a few queries into one trace; each becomes a "process" with
    // a timeline lane per cluster node.
    let mut profiles = vec![result.profile.unwrap()];
    for n in [6u32, 12] {
        let r = session.run(&tpch_logical(n)?)?;
        profiles.push(r.profile.expect("profiling is on"));
    }
    let path = std::env::temp_dir().join("hsqp_trace.json");
    std::fs::write(&path, chrome_trace(&profiles))?;
    println!(
        "\nwrote {} — load it in chrome://tracing or https://ui.perfetto.dev",
        path.display()
    );

    // Cluster-wide metrics aggregate across all the queries above.
    println!("\n=== cluster metrics ===");
    print!("{}", session.metrics().render());

    session.shutdown();
    Ok(())
}
