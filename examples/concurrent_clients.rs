//! Concurrent clients quickstart: `Session::submit` → `QueryHandle`.
//!
//! Three things the blocking `Session::run` cannot do:
//!
//! 1. overlap several queries over the shared exchange fabric (the
//!    dispatcher admits up to `max_concurrent` at once and the network
//!    scheduler arbitrates among them),
//! 2. watch a query's per-query fabric statistics while it runs,
//! 3. cancel a query and keep the engine healthy.
//!
//! ```bash
//! cargo run --release --example concurrent_clients
//! ```

use std::time::Instant;

use hsqp::engine::cluster::QueryHandle;
use hsqp::engine::error::EngineError;
use hsqp::engine::queries::tpch_logical;
use hsqp::engine::session::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::builder()
        .nodes(4)
        .max_concurrent(4)
        .tpch(0.01)
        .build()?;

    // --- submit/wait: four clients' worth of queries in flight at once --
    let started = Instant::now();
    let handles: Vec<(u32, QueryHandle)> = [3u32, 5, 10, 12, 14, 18]
        .iter()
        .map(|&n| Ok((n, session.submit(&tpch_logical(n)?)?)))
        .collect::<Result<_, EngineError>>()?;
    for (n, handle) in handles {
        let id = handle.id();
        let result = handle.wait()?;
        println!(
            "Q{n:<2} ({id}) {:>8.1} ms  {:>5} rows  {:>9} bytes shuffled (this query only)",
            result.elapsed.as_secs_f64() * 1e3,
            result.row_count(),
            result.bytes_shuffled,
        );
    }
    println!(
        "6 queries, 4 at a time, in {:.1} ms wall clock\n",
        started.elapsed().as_secs_f64() * 1e3
    );

    // --- try_result + live stats: poll instead of blocking -------------
    let handle = session.submit(&tpch_logical(21)?)?;
    let mut polls = 0u32;
    let result = loop {
        if let Some(result) = handle.try_result() {
            break result?;
        }
        polls += 1;
        std::thread::sleep(std::time::Duration::from_millis(5));
    };
    println!(
        "Q21 finished after {polls} polls; live counter saw {} messages",
        handle.net_stats().messages_sent()
    );
    println!("Q21 rows: {}\n", result.row_count());

    // --- cancel: cooperative, never wedges the fabric -------------------
    let doomed: Vec<QueryHandle> = (0..8)
        .map(|_| session.submit(&tpch_logical(2)?))
        .collect::<Result<_, EngineError>>()?;
    for h in &doomed {
        h.cancel();
    }
    let (mut cancelled, mut completed) = (0, 0);
    for h in doomed {
        match h.wait() {
            Err(EngineError::Cancelled) => cancelled += 1,
            Ok(_) => completed += 1, // already past its last stage boundary
            Err(e) => return Err(e.into()),
        }
    }
    println!("cancelled {cancelled}, completed {completed} — and the engine still answers:");
    let after = session.run(&tpch_logical(6)?)?;
    println!("Q6 rows: {}", after.row_count());

    session.shutdown();
    Ok(())
}
