//! Build a distributed query plan by hand: a repartition join between
//! orders and lineitem with pre-aggregation, run over two transports to
//! show what the RDMA multiplexer buys (the Figure 3 effect in miniature).
//!
//! ```bash
//! cargo run --release --example distributed_join
//! ```

use hsqp::engine::cluster::{Cluster, ClusterConfig, Transport};
use hsqp::engine::expr::{col, lit, litf};
use hsqp::engine::plan::{AggSpec, JoinKind, Plan, SortKey};
use hsqp::engine::{AggFunc, ExchangeKind};
use hsqp::tpch::{TpchDb, TpchTable};

/// Revenue per order priority: orders ⨝ lineitem, grouped and sorted.
fn revenue_by_priority() -> Plan {
    let orders = Plan::scan_cols(TpchTable::Orders, &["o_orderkey", "o_orderpriority"])
        .repartition(&["o_orderkey"]);
    let lineitem = Plan::scan_filtered(
        TpchTable::Lineitem,
        &["l_orderkey", "l_extendedprice", "l_discount"],
        col("l_quantity").lt(lit(30)),
    )
    .repartition(&["l_orderkey"]);
    let revenue = col("l_extendedprice").mul(litf(1.0).sub(col("l_discount")));
    lineitem
        .join(orders, &["l_orderkey"], &["o_orderkey"], JoinKind::Inner)
        // Pre-aggregate locally, reshuffle the small partials, merge.
        .aggregate(
            &["o_orderpriority"],
            vec![
                AggSpec::new(AggFunc::Sum, revenue, "revenue"),
                AggSpec::new(AggFunc::Count, lit(1), "lines"),
            ],
        )
        .repartition(&["o_orderpriority"])
        .aggregate(
            &["o_orderpriority"],
            vec![
                AggSpec::new(AggFunc::Sum, col("revenue"), "revenue"),
                AggSpec::new(AggFunc::Sum, col("lines"), "lines"),
            ],
        )
        .gather()
        .sort(vec![SortKey::asc("o_orderpriority")], None)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = TpchDb::generate(0.01);
    let plan = revenue_by_priority();
    assert_eq!(
        plan.exchange_count(),
        4,
        "two repartitions, one final gather"
    );
    let _ = ExchangeKind::Gather; // (re-exported for plan inspection)

    for (name, transport) in [
        ("RDMA + scheduling", Transport::rdma_scheduled()),
        ("TCP over GbE", Transport::tcp()),
    ] {
        let mut cfg = ClusterConfig::quick(3);
        cfg.transport = transport;
        if name.contains("GbE") {
            cfg.link = hsqp::net::LinkSpec::GBE;
        }
        let cluster = Cluster::start(cfg)?;
        cluster.load_tpch_db(db.clone())?;
        let result = cluster.run_plan(&plan)?;
        println!(
            "{name:>20}: {:>8.1} ms, {:>9} bytes shuffled, {} priorities",
            result.elapsed.as_secs_f64() * 1e3,
            result.bytes_shuffled,
            result.row_count(),
        );
        for row in 0..result.row_count() {
            let t = &result.table;
            println!(
                "{:>24} revenue={:<14.2} lines={}",
                t.value(row, 0),
                t.value(row, 1).as_f64(),
                t.value(row, 2),
            );
        }
        cluster.shutdown();
    }
    Ok(())
}
