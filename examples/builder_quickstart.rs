//! Builder quickstart: express a query as a logical plan and let the
//! distributed planner place exchanges, pick broadcast vs repartition, and
//! insert pre-aggregation.
//!
//! ```bash
//! cargo run --release --example builder_quickstart
//! ```

use hsqp::engine::cluster::Transport;
use hsqp::engine::expr::{col, lit, litf};
use hsqp::engine::logical::LogicalPlan;
use hsqp::engine::plan::{AggFunc, AggSpec, JoinKind, SortKey};
use hsqp::engine::session::Session;
use hsqp::tpch::TpchTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-server session over the paper's RDMA transport; TPC-H SF 0.01 is
    // generated and distributed during build().
    let session = Session::builder()
        .nodes(4)
        .transport(Transport::rdma())
        .tpch(0.01)
        .build()?;

    // Revenue per ship mode for recent, discounted lineitems that belong
    // to open orders — a query no hand-written plan exists for. The
    // planner decides how to distribute it.
    let open_orders = LogicalPlan::scan(TpchTable::Orders)
        .filter(col("o_orderstatus").eq(hsqp::engine::expr::lits("O")));
    let plan = LogicalPlan::scan(TpchTable::Lineitem)
        .filter(col("l_discount").ge(litf(0.05)))
        .join(
            open_orders,
            &["l_orderkey"],
            &["o_orderkey"],
            JoinKind::LeftSemi,
        )
        .aggregate(
            &["l_shipmode"],
            vec![
                AggSpec::new(
                    AggFunc::Sum,
                    col("l_extendedprice").mul(litf(1.0).sub(col("l_discount"))),
                    "revenue",
                ),
                AggSpec::new(AggFunc::Count, lit(1), "lines"),
            ],
        )
        .top_k(vec![SortKey::desc("revenue")], 5);

    // Inspect what the planner produced before running it.
    let physical = session.physical_plan(&plan)?;
    println!(
        "planner placed {} exchange operator(s)",
        physical.exchange_count()
    );

    let result = session.run(&plan)?;
    println!(
        "{} ship modes in {:.1} ms ({} bytes shuffled)",
        result.row_count(),
        result.elapsed.as_secs_f64() * 1e3,
        result.bytes_shuffled,
    );
    let t = &result.table;
    for row in 0..result.row_count() {
        println!(
            "  {:<10} revenue={:<14} lines={}",
            t.value(row, 0),
            t.value(row, 1),
            t.value(row, 2),
        );
    }

    session.shutdown();
    Ok(())
}
