//! Subquery quickstart: a multi-stage `LogicalQuery` with a shared
//! subplan (CTE) and a scalar parameter stage.
//!
//! The query is Q15's shape — "which supplier produced the most revenue?"
//! — written the way HyPer-style unnesting decorrelates it: the revenue
//! view is registered once with `.with(...)` and scanned by both stages,
//! and the scalar subquery `max(total_revenue)` becomes an earlier stage
//! whose first result row binds `param(0)` in the final stage.
//!
//! ```bash
//! cargo run --release --example subquery_quickstart
//! ```

use hsqp::engine::cluster::Transport;
use hsqp::engine::expr::{col, litf, param};
use hsqp::engine::logical::{LogicalPlan, LogicalQuery};
use hsqp::engine::plan::{AggFunc, AggSpec, JoinKind, SortKey};
use hsqp::engine::queries::StageRole;
use hsqp::engine::session::Session;
use hsqp::tpch::TpchTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::builder()
        .nodes(4)
        .transport(Transport::rdma())
        .tpch(0.01)
        .build()?;

    // Revenue per supplier — needed twice (to find the maximum, and to
    // find who achieved it), so it is planned and materialized once.
    let revenue = LogicalPlan::scan(TpchTable::Lineitem).aggregate(
        &["l_suppkey"],
        vec![AggSpec::new(
            AggFunc::Sum,
            col("l_extendedprice").mul(litf(1.0).sub(col("l_discount"))),
            "total_revenue",
        )],
    );

    // Stage 1 computes the scalar subquery: its single-row result binds
    // param(0) for the final stage, which keeps the supplier(s) whose
    // revenue equals it and joins supplier names back in. Exact equality
    // is safe because both stages read the same materialized CTE, so
    // param(0) is bit-identical to a stored total_revenue value.
    let max_revenue = LogicalPlan::from_cte("revenue").aggregate(
        &[],
        vec![AggSpec::new(AggFunc::Max, col("total_revenue"), "max_rev")],
    );
    let top_supplier = LogicalPlan::scan(TpchTable::Supplier)
        .join(
            LogicalPlan::from_cte("revenue").filter(col("total_revenue").eq(param(0))),
            &["s_suppkey"],
            &["l_suppkey"],
            JoinKind::Inner,
        )
        .project(&["s_suppkey", "s_name", "total_revenue"])
        .sort(vec![SortKey::asc("s_suppkey")]);

    let query = LogicalQuery::cte("revenue", revenue)
        .then(max_revenue)
        .then(top_supplier);

    // Inspect the lowered stages before running: one materialization, one
    // parameter stage, one result stage, each a distributed plan.
    let physical = session.physical_query(&query)?;
    for (i, stage) in physical.stages.iter().enumerate() {
        let role = match &stage.role {
            StageRole::Materialize(name) => format!("materialize {name:?}"),
            StageRole::Params => "bind scalar parameters".to_string(),
            StageRole::Result => "result".to_string(),
        };
        println!("stage {}/{} — {role}:", i + 1, physical.stages.len());
        print!("{}", stage.plan.explain());
    }

    let result = session.run(&query)?;
    println!(
        "\n{} top supplier(s) in {:.1} ms ({} bytes shuffled)",
        result.row_count(),
        result.elapsed.as_secs_f64() * 1e3,
        result.bytes_shuffled,
    );
    let t = &result.table;
    for row in 0..result.row_count() {
        println!(
            "  {:<4} {:<20} revenue={}",
            t.value(row, 0),
            t.value(row, 1),
            t.value(row, 2),
        );
    }

    session.shutdown();
    Ok(())
}
